"""Declarative SLO targets evaluated over a metrics history.

An SLO file is a small JSON object::

    {
        "availability": 0.999,
        "latency_threshold_seconds": 0.050,
        "latency_fraction": 0.99,
        "burn_rate_max": 14.4,
        "burn_window_seconds": 3600
    }

read as: at least 99.9% of requests answer without a 5xx, at least 99%
of requests finish within 50 ms, and over the trailing hour the error
budget (the allowed 0.1%) must not burn faster than 14.4x its steady
rate -- the classic fast-burn page threshold.  ``latency_*`` and
``burn_*`` are optional; availability alone is a valid target.

:func:`evaluate_history` runs a target against the JSONL history the
HTTP server persists (``--history``, written via
``repro.obs.timeseries.HistoryStore``).  Entries are cumulative
snapshots, possibly spanning several server lifetimes;
``history_deltas`` turns them into per-interval deltas (a lifetime's
first entry counts from zero), so restarts neither double-count nor
hide traffic.  The latency check is deliberately conservative: with
upper-inclusive buckets only samples in buckets whose bound is <= the
threshold are *known* fast, so a threshold between bounds rounds
against the SLO, never in its favour.

``repro-hoiho slo-report`` renders the result and exits nonzero on
breach, which makes any smoke run CI-gateable.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import history_deltas

#: Counter / family / histogram names the serving stack emits.
REQUESTS_COUNTER = "http_requests"
RESPONSES_FAMILY = "http_responses"
LATENCY_HISTOGRAM = "http_request_seconds"


@dataclass(frozen=True)
class SloTarget:
    """One service-level objective, parsed from a JSON file."""

    availability: float = 0.999
    latency_threshold_seconds: Optional[float] = None
    latency_fraction: float = 0.99
    burn_rate_max: Optional[float] = None
    burn_window_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1], got %r"
                             % (self.availability,))
        if self.latency_threshold_seconds is not None \
                and self.latency_threshold_seconds <= 0:
            raise ValueError("latency_threshold_seconds must be > 0")
        if not 0.0 < self.latency_fraction <= 1.0:
            raise ValueError("latency_fraction must be in (0, 1], got %r"
                             % (self.latency_fraction,))
        if self.burn_rate_max is not None and self.burn_rate_max <= 0:
            raise ValueError("burn_rate_max must be > 0")
        if self.burn_window_seconds <= 0:
            raise ValueError("burn_window_seconds must be > 0")
        if self.burn_rate_max is not None and self.availability >= 1.0:
            raise ValueError(
                "burn rate needs an error budget: availability must be "
                "< 1.0 when burn_rate_max is set")

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SloTarget":
        known = {"availability", "latency_threshold_seconds",
                 "latency_fraction", "burn_rate_max",
                 "burn_window_seconds"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError("unknown SLO keys: %s (known: %s)"
                             % (", ".join(unknown),
                                ", ".join(sorted(known))))
        return cls(**{key: payload[key] for key in payload})

    @classmethod
    def from_file(cls, path: str) -> "SloTarget":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError("SLO file %s must hold a JSON object"
                             % path)
        return cls.from_dict(payload)


def _fold_rows(rows: Iterable[Mapping]) -> Dict[str, object]:
    """Requests / 5xx errors / latency histogram over delta rows."""
    merged = MetricsRegistry()
    for row in rows:
        merged.merge_snapshot(row["delta"])
    snapshot = merged.snapshot()
    requests = (snapshot.get("counters") or {}).get(REQUESTS_COUNTER, 0)
    by_status = (snapshot.get("labelled") or {}).get(RESPONSES_FAMILY, {})
    errors = sum(count for status, count in by_status.items()
                 if str(status).startswith("5"))
    return {"requests": requests, "errors": errors,
            "latency": (snapshot.get("histograms")
                        or {}).get(LATENCY_HISTOGRAM)}


def _fast_fraction(latency: Optional[Mapping],
                   threshold: float) -> Optional[float]:
    """Fraction of samples provably <= ``threshold`` (None when empty).

    Buckets are upper-inclusive, so every sample in a bucket whose
    bound is <= the threshold is fast for sure; the bucket straddling
    the threshold counts against the SLO.
    """
    if not latency or not latency.get("count"):
        return None
    bounds = list(latency.get("bounds") or [])
    buckets = list(latency.get("buckets") or [])
    known_fast = sum(buckets[:bisect.bisect_right(bounds, threshold)])
    return known_fast / latency["count"]


def evaluate_history(entries: Iterable[Mapping], target: SloTarget,
                     now: Optional[float] = None) -> Dict[str, object]:
    """Evaluate ``target`` over history entries; never raises on data.

    Returns ``{"ok", "requests", "errors", "availability", "checks"}``
    where each check is ``{"name", "ok", "value", "limit", "detail"}``.
    An empty history (or one with zero requests) passes vacuously but
    says so in the detail, so a broken pipeline is visible even though
    it cannot breach.  ``now`` anchors the burn window and defaults to
    the newest entry's timestamp.
    """
    entries = list(entries)
    rows = history_deltas(entries)
    totals = _fold_rows(rows)
    requests = totals["requests"]
    errors = totals["errors"]
    availability = 1.0 - errors / requests if requests else None
    checks: List[Dict[str, object]] = []

    checks.append({
        "name": "availability",
        "ok": availability is None or availability >= target.availability,
        "value": availability,
        "limit": target.availability,
        "detail": ("no requests in history" if availability is None else
                   "%d/%d requests answered 5xx"
                   % (errors, requests)),
    })

    if target.latency_threshold_seconds is not None:
        fast = _fast_fraction(totals["latency"],
                              target.latency_threshold_seconds)
        checks.append({
            "name": "latency",
            "ok": fast is None or fast >= target.latency_fraction,
            "value": fast,
            "limit": target.latency_fraction,
            "detail": ("no latency samples in history" if fast is None
                       else "fraction <= %gs"
                       % target.latency_threshold_seconds),
        })

    if target.burn_rate_max is not None:
        if now is None:
            stamps = [e.get("ts") for e in entries
                      if e.get("ts") is not None]
            now = max(stamps) if stamps else 0.0
        since = now - target.burn_window_seconds
        recent = [row for row in rows
                  if row.get("ts") is not None and row["ts"] >= since]
        window = _fold_rows(recent)
        budget = 1.0 - target.availability
        if window["requests"]:
            error_rate = window["errors"] / window["requests"]
            burn = error_rate / budget
        else:
            burn = None
        checks.append({
            "name": "burn_rate",
            "ok": burn is None or burn <= target.burn_rate_max,
            "value": burn,
            "limit": target.burn_rate_max,
            "detail": ("no requests in burn window" if burn is None else
                       "%d/%d errors over trailing %gs"
                       % (window["errors"], window["requests"],
                          target.burn_window_seconds)),
        })

    return {
        "ok": all(check["ok"] for check in checks),
        "entries": len(entries),
        "requests": requests,
        "errors": errors,
        "availability": availability,
        "checks": checks,
    }


def render_slo_report(report: Mapping) -> str:
    """One-screen text rendering of an :func:`evaluate_history` result."""
    lines = ["slo report: %s" % ("OK" if report["ok"] else "BREACH")]
    lines.append("  history entries          %d" % report["entries"])
    lines.append("  requests                 %d" % report["requests"])
    lines.append("  errors (5xx)             %d" % report["errors"])
    for check in report["checks"]:
        value = check["value"]
        shown = "n/a" if value is None else "%.6f" % value
        lines.append("  %-8s %-7s value=%s limit=%.6f  (%s)"
                     % (check["name"],
                        "ok" if check["ok"] else "BREACH",
                        shown, check["limit"], check["detail"]))
    return "\n".join(lines)
