"""``repro-hoiho trace summary``: render a trace JSONL file as text.

The renderer turns a flat list of span records back into the tree the
tracer produced -- including worker-side spans that were re-parented by
:meth:`Tracer.adopt` -- and prints:

* the stage tree with per-span wall/cpu totals, attribute highlights,
  and events (retries, pool rebuilds, degradation) inline;
* a top-N table of the slowest ``learn.suffix`` spans (the unit of
  work the paper's Hoiho algorithm iterates over);
* a resilience table summing retry/pool-rebuild/timeout/poison events
  across the whole run;
* a cache table aggregating MatchCache hit-rates and artifact-store
  hits/misses/writes from span attributes.

Everything is computed from the records alone, so a file written on
one machine renders identically anywhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Span attributes surfaced inline in the tree (order matters).
_HIGHLIGHT_ATTRS = ("suffix", "snapshot", "kind", "candidates", "kept",
                    "hit_rate", "hit", "items", "nodes", "annotated",
                    "round", "retries", "chunk")

#: Event names counted into the resilience table.
_RESILIENCE_EVENTS = ("retry", "pool-rebuild", "timeout", "poisoned",
                      "degrade-to-serial")


def _format_attrs(attrs: Dict[str, object]) -> str:
    parts = []
    for key in _HIGHLIGHT_ATTRS:
        if key in attrs:
            value = attrs[key]
            if isinstance(value, float):
                parts.append("%s=%.3f" % (key, value))
            else:
                parts.append("%s=%s" % (key, value))
    return " ".join(parts)


def _tree(records: List[Dict[str, object]],
          ) -> Tuple[List[Dict[str, object]],
                     Dict[Optional[str], List[Dict[str, object]]]]:
    """Roots plus a parent-id -> children index, preserving file order."""
    ids = {record.get("id") for record in records}
    children: Dict[Optional[str], List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    for record in records:
        parent = record.get("parent")
        # A parent id we never saw (truncated file) renders as a root.
        if parent is None or parent not in ids:
            roots.append(record)
        else:
            children.setdefault(parent, []).append(record)
    return roots, children


def _render_span(record: Dict[str, object],
                 children: Dict[Optional[str], List[Dict[str, object]]],
                 depth: int, lines: List[str], max_depth: int,
                 fold: int) -> None:
    indent = "  " * depth
    attrs = _format_attrs(record.get("attrs") or {})
    status = "" if record.get("status") == "ok" else "  [ERROR: %s]" % (
        record.get("error") or "unknown")
    lines.append("%s%-*s %8.3fs cpu=%7.3fs%s%s"
                 % (indent, max(36 - len(indent), 1),
                    record.get("name", "?"),
                    float(record.get("wall", 0.0)),
                    float(record.get("cpu", 0.0)),
                    ("  " + attrs) if attrs else "", status))
    for event in record.get("events") or []:
        event_attrs = event.get("attrs") or {}
        detail = " ".join("%s=%s" % (k, event_attrs[k])
                          for k in sorted(event_attrs))
        lines.append("%s  ! %s @%.3fs%s"
                     % (indent, event.get("name", "?"),
                        float(event.get("at", 0.0)),
                        ("  " + detail) if detail else ""))
    kids = children.get(record.get("id"), [])
    if depth + 1 >= max_depth and kids:
        lines.append("%s  ... %d child span(s) folded" % (indent, len(kids)))
        return
    if len(kids) > fold:
        shown_wall = sum(float(k.get("wall", 0.0)) for k in kids[fold:])
        for kid in kids[:fold]:
            _render_span(kid, children, depth + 1, lines, max_depth, fold)
        lines.append("%s  ... %d more sibling span(s), %.3fs total"
                     % (indent, len(kids) - fold, shown_wall))
        return
    for kid in kids:
        _render_span(kid, children, depth + 1, lines, max_depth, fold)


def _slowest_suffixes(records: Iterable[Dict[str, object]],
                      top: int) -> List[str]:
    suffixes = [r for r in records if r.get("name") == "learn.suffix"]
    if not suffixes:
        return []
    suffixes.sort(key=lambda r: -float(r.get("wall", 0.0)))
    lines = ["", "slowest suffixes (top %d of %d)"
             % (min(top, len(suffixes)), len(suffixes))]
    lines.append("  %-28s %9s %10s %6s %9s"
                 % ("suffix", "wall", "candidates", "kept", "hit-rate"))
    for record in suffixes[:top]:
        attrs = record.get("attrs") or {}
        hit_rate = attrs.get("hit_rate")
        lines.append("  %-28s %8.3fs %10s %6s %9s"
                     % (attrs.get("suffix", "?"),
                        float(record.get("wall", 0.0)),
                        attrs.get("candidates", "-"),
                        attrs.get("kept", "-"),
                        ("%.1f%%" % (float(hit_rate) * 100.0))
                        if hit_rate is not None else "-"))
    return lines


def _resilience_table(records: Iterable[Dict[str, object]]) -> List[str]:
    counts: Dict[str, int] = {}
    for record in records:
        for event in record.get("events") or []:
            name = event.get("name")
            if name in _RESILIENCE_EVENTS:
                attrs = event.get("attrs") or {}
                amount = int(attrs.get("count", 1))
                counts[name] = counts.get(name, 0) + amount
    if not counts:
        return []
    lines = ["", "resilience events"]
    for name in _RESILIENCE_EVENTS:
        if name in counts:
            lines.append("  %-20s %d" % (name, counts[name]))
    return lines


def _cache_table(records: Iterable[Dict[str, object]]) -> List[str]:
    match_calls = 0
    vector_hits = 0
    store: Dict[str, Dict[str, int]] = {}
    for record in records:
        attrs = record.get("attrs") or {}
        name = record.get("name")
        if name == "learn.suffix":
            match_calls += int(attrs.get("match_calls", 0))
            vector_hits += int(attrs.get("vector_hits", 0))
        elif name in ("store.get", "store.put"):
            kind = str(attrs.get("kind", "?"))
            row = store.setdefault(kind, {"hits": 0, "misses": 0,
                                          "writes": 0})
            if name == "store.put":
                row["writes"] += 1
            elif attrs.get("hit"):
                row["hits"] += 1
            else:
                row["misses"] += 1
    lines: List[str] = []
    if match_calls:
        lines += ["", "match cache",
                  "  %-20s %d" % ("match_calls", match_calls),
                  "  %-20s %d" % ("vector_hits", vector_hits),
                  "  %-20s %.1f%%" % ("hit_rate",
                                      100.0 * vector_hits / match_calls)]
    if store:
        lines += ["", "artifact store",
                  "  %-12s %6s %8s %8s" % ("kind", "hits", "misses",
                                           "writes")]
        for kind in sorted(store):
            row = store[kind]
            lines.append("  %-12s %6d %8d %8d"
                         % (kind, row["hits"], row["misses"],
                            row["writes"]))
    return lines


def render_summary(records: List[Dict[str, object]], top: int = 10,
                   max_depth: int = 6, fold: int = 20) -> str:
    """The full ``trace summary`` report for a list of span records.

    ``max_depth`` and ``fold`` keep pathological traces one screen per
    stage: deeper nesting and sibling runs beyond ``fold`` collapse
    into count lines (their time is still in the parent totals).
    """
    if not records:
        return "trace is empty"
    roots, children = _tree(records)
    total_wall = sum(float(r.get("wall", 0.0)) for r in roots)
    errors = sum(1 for r in records if r.get("status") == "error")
    lines = ["trace: %d span(s), %d root stage(s), %.3fs total wall%s"
             % (len(records), len(roots), total_wall,
                (", %d error(s)" % errors) if errors else ""), ""]
    for root in roots:
        _render_span(root, children, 0, lines, max_depth, fold)
    lines += _slowest_suffixes(records, top)
    lines += _resilience_table(records)
    lines += _cache_table(records)
    return "\n".join(lines)
