"""repro.obs: the dependency-free observability core.

One package owns introspection for the whole pipeline:

* :mod:`repro.obs.trace` -- nested spans, JSONL traces, worker span
  capture, and the always-on :data:`NULL_TRACER` no-op;
* :mod:`repro.obs.metrics` -- counters/histograms and the
  :class:`MetricsRegistry` shared by serve, learner, pipeline, store;
* :mod:`repro.obs.prom` -- Prometheus text exposition of any snapshot;
* :mod:`repro.obs.manifest` -- run manifests and schema validation;
* :mod:`repro.obs.summary` -- the ``trace summary`` renderer.

See docs/OBSERVABILITY.md for the span model and file formats.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_PERCENTILES,
    Histogram,
    LabelledCounter,
    MetricsRegistry,
    merge_outcomes,
    render_snapshot,
)
from repro.obs.trace import (
    Captured,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    adopt_all,
    load_trace,
    resilience_to_span,
    retry_to_span,
    unwrap,
)

__all__ = [
    "Captured",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_PERCENTILES",
    "Histogram",
    "LabelledCounter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "adopt_all",
    "load_trace",
    "merge_outcomes",
    "render_snapshot",
    "resilience_to_span",
    "retry_to_span",
    "unwrap",
]
