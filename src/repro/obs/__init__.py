"""repro.obs: the dependency-free observability core.

One package owns introspection for the whole pipeline:

* :mod:`repro.obs.trace` -- nested spans, JSONL traces, worker span
  capture, and the always-on :data:`NULL_TRACER` no-op;
* :mod:`repro.obs.metrics` -- counters/histograms and the
  :class:`MetricsRegistry` shared by serve, learner, pipeline, store;
* :mod:`repro.obs.timeseries` -- the time axis: exact snapshot deltas
  (:func:`diff_snapshot`), rolling windows, and the persisted
  :class:`HistoryStore`;
* :mod:`repro.obs.logjson` -- structured JSON line logging (server
  diagnostics and the per-request access log);
* :mod:`repro.obs.slo` -- declarative SLO targets evaluated over the
  persisted history (``repro-hoiho slo-report``);
* :mod:`repro.obs.prom` -- Prometheus text exposition of any snapshot;
* :mod:`repro.obs.manifest` -- run manifests and schema validation;
* :mod:`repro.obs.summary` -- the ``trace summary`` renderer.

See docs/OBSERVABILITY.md for the span model and file formats.
"""

from repro.obs.logjson import (
    JsonLogger,
    NULL_LOG,
    new_request_id,
    open_json_logger,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_PERCENTILES,
    Histogram,
    LabelledCounter,
    MetricsRegistry,
    merge_outcomes,
    render_snapshot,
)
from repro.obs.slo import (
    SloTarget,
    evaluate_history,
    render_slo_report,
)
from repro.obs.timeseries import (
    HistoryStore,
    RollingWindows,
    diff_snapshot,
    history_deltas,
)
from repro.obs.trace import (
    Captured,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    adopt_all,
    load_trace,
    resilience_to_span,
    retry_to_span,
    unwrap,
)

__all__ = [
    "Captured",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_PERCENTILES",
    "Histogram",
    "HistoryStore",
    "JsonLogger",
    "LabelledCounter",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_TRACER",
    "NullTracer",
    "RollingWindows",
    "SloTarget",
    "Span",
    "Tracer",
    "adopt_all",
    "diff_snapshot",
    "evaluate_history",
    "history_deltas",
    "load_trace",
    "merge_outcomes",
    "new_request_id",
    "open_json_logger",
    "render_slo_report",
    "render_snapshot",
    "resilience_to_span",
    "retry_to_span",
    "unwrap",
]
