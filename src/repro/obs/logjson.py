"""Structured JSON line logging for the serving stack.

One event per line, stdlib only, shaped for machines first:

``{"event": ..., "ts": ..., "level": ..., "worker_id": ..., <attrs>}``

``repro.serve.http`` uses two instances of this: a *diagnostics*
logger on stderr that replaces the old bare ``print(..., file=
sys.stderr)`` worker messages (reload failures, shadow-load failures,
worker exits) with greppable events, and an opt-in *access log*
(``--access-log PATH|-``) emitting one line per request with method,
path, status, bytes, latency, and the request id echoed in the
``X-Request-Id`` response header.

Design constraints that shaped the implementation:

* Every ``write`` call carries only **whole** ``\\n``-terminated
  lines.  In the pre-fork server multiple worker processes append to
  the same access-log file; POSIX ``O_APPEND`` plus whole-lines-per-
  write keeps their lines intact instead of interleaved.  File targets
  are opened unbuffered (``"ab", buffering=0``) so each write is
  exactly one syscall -- no text/buffer layers that could split a line
  mid-way.
* The access log rides the request path, so there is a **buffered**
  mode (``buffered=True``): ``log()`` only builds the record and
  enqueues it (a couple of dict ops), and a drainer thread JSON-
  encodes pending records and writes them as one batch of whole lines
  every ``flush_seconds`` (or sooner when a batch builds up).  That
  keeps the hot-path cost per request to ~a microsecond -- measured
  and budgeted by the ``obs_window`` bench section -- at the usual
  access-log price: the tail of the log rides ~``flush_seconds``
  behind the traffic (``flush()``/``close()`` drain it synchronously),
  and a drainer that cannot keep up drops records beyond
  ``buffer_records`` rather than stall requests (counted in
  ``dropped``, reported as a ``log_dropped`` event when it happens).
  Rare diagnostics use the default synchronous mode.
* ``json.dumps(..., default=str)``: a surprising attr value (an
  exception object, a Path) degrades to its string form rather than
  killing the request that tried to log it.
* Key order is stable (``event`` first, then ``ts``/``level``/
  ``worker_id``, then attrs in call order) so the logs are pleasant to
  eyeball even before they reach a query engine.
* :data:`NULL_LOG` mirrors ``trace.NULL_TRACER``: call sites log
  unconditionally and configuration decides whether anything happens.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
import uuid
from collections import deque
from typing import Callable, Dict, IO, Optional

LEVELS = ("debug", "info", "warning", "error")

#: Buffered mode: pending records that trigger an early drain (below)
#: and the default cap beyond which records are dropped, not queued.
DRAIN_BATCH = 512
DEFAULT_BUFFER_RECORDS = 65536


def new_request_id() -> str:
    """A fresh opaque request id (16 hex chars, uuid4-derived)."""
    return uuid.uuid4().hex[:16]


class JsonLogger:
    """Writes one JSON object per line to a stream or file.

    ``worker_id`` is bound at construction (each forked worker builds
    its own logger) and stamped on every record; ``None`` means the
    parent/supervisor.  Thread-safe: the serving threads and the flush
    loop share one instance.

    ``buffered=True`` turns on the deferred hot-path mode described in
    the module docstring: ``log()`` enqueues, a daemon drainer thread
    encodes and writes batches of whole lines.  The drainer starts at
    construction, so build buffered loggers *after* any fork (the
    pre-fork workers each build their own).
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 path: Optional[str] = None,
                 worker_id: Optional[int] = None,
                 clock: Callable[[], float] = time.time,
                 buffered: bool = False,
                 flush_seconds: float = 0.05,
                 buffer_records: int = DEFAULT_BUFFER_RECORDS,
                 drain_batch: int = DRAIN_BATCH) -> None:
        if stream is not None and path is not None:
            raise ValueError("pass a stream or a path, not both")
        self._owns_stream = False
        if path is not None:
            stream = open(path, "ab", buffering=0)
            self._owns_stream = True
        self._stream = stream if stream is not None else sys.stderr
        self._binary = isinstance(self._stream,
                                  (io.RawIOBase, io.BufferedIOBase))
        self.worker_id = worker_id
        self._clock = clock
        self._lock = threading.Lock()
        #: Records dropped because the buffer was full (buffered mode).
        self.dropped = 0
        self._dropped_reported = 0
        self._pending: Optional[deque] = None
        self._closed = False
        if buffered:
            self._pending = deque()
            self._flush_seconds = flush_seconds
            self._buffer_records = buffer_records
            self._drain_batch = drain_batch
            self._wake = threading.Event()
            self._drainer = threading.Thread(
                target=self._drain_loop, name="jsonlog-drain",
                daemon=True)
            self._drainer.start()

    @property
    def enabled(self) -> bool:
        return True

    def log(self, event: str, level: str = "info",
            **attrs: object) -> Dict[str, object]:
        """Emit one event line; returns the record (handy in tests)."""
        if level not in LEVELS:
            raise ValueError("unknown log level %r (use one of %s)"
                             % (level, "/".join(LEVELS)))
        record: Dict[str, object] = {
            "event": event,
            "ts": round(self._clock(), 6),
            "level": level,
            "worker_id": self.worker_id,
        }
        record.update(attrs)
        if self._pending is not None:
            with self._lock:
                if len(self._pending) >= self._buffer_records:
                    self.dropped += 1
                else:
                    self._pending.append(record)
                    if len(self._pending) >= self._drain_batch:
                        self._wake.set()
            return record
        self._write_lines([record])
        return record

    def _write_lines(self, records) -> None:
        """Encode ``records`` and write them as one whole-lines batch."""
        try:
            # Fast path: JSON-native values only (the usual case).
            data = "\n".join(map(json.dumps, records)) + "\n"
        except (TypeError, ValueError):
            data = "\n".join(json.dumps(record, default=str)
                             for record in records) + "\n"
        with self._lock:
            try:
                if self._binary:
                    # Unbuffered file target: one write, one syscall.
                    self._stream.write(data.encode("utf-8"))
                else:
                    self._stream.write(data)
                    self._stream.flush()
            except (ValueError, OSError):
                pass  # a closed stderr must never take a request down

    def _drain(self) -> None:
        """Flush every pending record to the stream (buffered mode)."""
        with self._lock:
            if not self._pending:
                batch = []
            else:
                batch = list(self._pending)
                self._pending.clear()
            dropped = self.dropped - self._dropped_reported
            self._dropped_reported = self.dropped
        if dropped:
            batch.append({"event": "log_dropped",
                          "ts": round(self._clock(), 6),
                          "level": "warning",
                          "worker_id": self.worker_id,
                          "dropped": dropped})
        if batch:
            self._write_lines(batch)

    def _drain_loop(self) -> None:
        while True:
            self._wake.wait(self._flush_seconds)
            self._wake.clear()
            self._drain()
            if self._closed:
                return

    def flush(self) -> None:
        """Synchronously write anything buffered (no-op when sync)."""
        if self._pending is not None:
            self._drain()

    def close(self) -> None:
        """Drain, stop the drainer, and close an owned file."""
        if self._pending is not None and not self._closed:
            self._closed = True
            self._wake.set()
            self._drainer.join(2.0)
            self._drain()  # anything that raced past the drainer
        if self._owns_stream:
            try:
                self._stream.close()
            except (ValueError, OSError):
                pass

    def __repr__(self) -> str:
        return "JsonLogger(worker_id=%r)" % (self.worker_id,)


class _NullLogger(JsonLogger):
    """Accepts every call, writes nothing (the disabled default)."""

    def __init__(self) -> None:
        super().__init__(stream=io.StringIO())

    @property
    def enabled(self) -> bool:
        return False

    def log(self, event: str, level: str = "info",
            **attrs: object) -> Dict[str, object]:
        return {}


#: Shared no-op logger, analogous to ``trace.NULL_TRACER``.
NULL_LOG = _NullLogger()


def open_json_logger(target: Optional[str],
                     worker_id: Optional[int] = None,
                     buffered: bool = False) -> JsonLogger:
    """Resolve a ``PATH|-`` CLI value into a logger.

    ``None`` disables (returns :data:`NULL_LOG`), ``"-"`` writes to
    stderr (so server diagnostics and the access log share one fd that
    shells can redirect together), anything else appends to that file.
    ``buffered`` selects the deferred hot-path mode (the access log
    passes ``True``; diagnostics stay synchronous).
    """
    if target is None:
        return NULL_LOG
    if target == "-":
        return JsonLogger(stream=sys.stderr, worker_id=worker_id,
                          buffered=buffered)
    return JsonLogger(path=target, worker_id=worker_id,
                      buffered=buffered)
