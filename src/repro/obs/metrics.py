"""Counters and histograms: the metrics half of ``repro.obs``.

Promoted from ``repro.serve.metrics`` (which now re-exports from here)
so the serving layer, the learner, the snapshot pipeline, and the
artifact store all share one registry vocabulary.  This module provides
the three primitives Prometheus-style systems offer (counter, labelled
counter family, histogram) as plain dict-backed objects cheap enough to
update on every request, plus a :class:`MetricsRegistry` that owns them
and renders one-screen summaries.  ``repro.obs.prom`` renders any
snapshot in Prometheus text exposition format.

Histogram bucket semantics (deterministic by construction):

* Buckets are **upper-inclusive**: bucket ``i`` covers the half-open
  interval ``(bounds[i-1], bounds[i]]`` (with an implicit lower edge of
  0 for bucket 0).  A value exactly equal to ``bounds[i]`` lands in
  bucket ``i`` because ``observe`` uses ``bisect.bisect_left``, which
  returns the *leftmost* insertion point -- i.e. the index of the bound
  itself when the value ties it.  This matches Prometheus's
  cumulative-``le`` convention.
* Values strictly above the last bound land in the single overflow
  bucket (rendered as ``+Inf`` by the prom exposition); percentiles
  that resolve there report the observed maximum rather than
  extrapolating past the bounds.
* Percentile interpolation is clamped to the observed ``[min, max]``
  range, so a one-sample histogram reports the sample itself for every
  percentile and an empty histogram reports 0.0 -- neither divides by
  zero.

Everything here is single-process state: parallel stages aggregate
worker results into the parent's registry rather than sharing one
across processes.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 1us .. 1s, log-spaced 1-2-5.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1, 1.0,
)

#: Percentiles rendered by default.
DEFAULT_PERCENTILES = (0.50, 0.90, 0.99)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up (got %d)" % amount)
        self.value += amount

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class LabelledCounter:
    """A family of counters keyed by one label (e.g. suffix)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: Dict[str, int] = {}

    def inc(self, label: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter for ``label``."""
        if amount < 0:
            raise ValueError("counters only go up (got %d)" % amount)
        self.values[label] = self.values.get(label, 0) + amount

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` largest labels, count-descending then name."""
        return sorted(self.values.items(),
                      key=lambda pair: (-pair[1], pair[0]))[:n]

    def __repr__(self) -> str:
        return "LabelledCounter(%s, %d labels)" % (self.name,
                                                   len(self.values))


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    See the module docstring for the exact bucket-edge semantics
    (upper-inclusive via ``bisect_left``; overflow past the last
    bound; percentiles clamped to the observed range).
    """

    __slots__ = ("name", "bounds", "buckets", "overflow", "count",
                 "total", "minimum", "maximum")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.buckets = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample.

        ``bisect_left`` makes the edge case deterministic: a value
        exactly equal to ``bounds[i]`` gets index ``i`` (the bound's
        own slot), so every bucket is upper-inclusive.  ``bisect_right``
        would instead push ties into the next bucket up, which breaks
        the Prometheus ``le`` reading of the bounds.
        """
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.buckets[index] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` samples that all equal ``value``.

        The batch counterpart to :meth:`observe`: one bisect and one
        bucket update however many samples the batch carried.  The
        annotation batch path uses this to record amortised per-item
        latency while keeping the histogram's ``count`` equal to the
        number of requests.
        """
        if count < 0:
            raise ValueError("sample count must be >= 0 (got %d)" % count)
        if count == 0:
            return
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.buckets[index] += count
        else:
            self.overflow += count
        self.count += count
        self.total += value * count
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """The ``fraction`` (0..1] percentile, bucket-interpolated.

        Within the winning bucket the estimate interpolates linearly
        between its lower and upper bound, then clamps to the observed
        ``[min, max]`` range: a one-sample histogram therefore reports
        the sample itself (not a bucket midpoint), and no path divides
        by the sample count or an empty bucket.  Samples past the last
        bound report the observed maximum.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1], got %r" % fraction)
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            if bucket == 0:
                continue
            lower = self.bounds[index - 1] if index else 0.0
            upper = self.bounds[index]
            if seen + bucket >= target:
                within = (target - seen) / bucket
                return self._clamp(lower + (upper - lower) * within)
            seen += bucket
        return self.maximum if self.maximum is not None else 0.0

    def _clamp(self, estimate: float) -> float:
        if self.minimum is not None and estimate < self.minimum:
            return self.minimum
        if self.maximum is not None and estimate > self.maximum:
            return self.maximum
        return estimate

    @classmethod
    def from_delta(cls, name: str, bounds: Sequence[float],
                   buckets: Sequence[int], overflow: int = 0,
                   count: Optional[int] = None, total: float = 0.0,
                   minimum: Optional[float] = None,
                   maximum: Optional[float] = None) -> "Histogram":
        """Rebuild a histogram from pre-counted buckets.

        The windowed-telemetry constructor: ``repro.obs.timeseries``
        folds per-window bucket *deltas* and needs percentiles over
        them with exactly the semantics :meth:`percentile` hardened
        (upper-inclusive edges, overflow reporting the observed max,
        clamping to ``[min, max]``, the one-sample and empty cases) --
        so it rebuilds a real histogram instead of reimplementing the
        interpolation.  ``count`` defaults to the bucket total;
        ``minimum``/``maximum`` are optional clamp bounds (a window
        delta carries the cumulative extremes, which bracket every
        windowed sample).
        """
        hist = cls(name, bounds)
        if len(buckets) != len(hist.buckets):
            raise ValueError(
                "histogram %r delta has %d buckets for %d bounds"
                % (name, len(buckets), len(hist.buckets)))
        if overflow < 0 or any(b < 0 for b in buckets):
            raise ValueError(
                "histogram %r delta has negative bucket counts" % name)
        hist.buckets = [int(b) for b in buckets]
        hist.overflow = int(overflow)
        observed = sum(hist.buckets) + hist.overflow
        hist.count = observed if count is None else int(count)
        if hist.count != observed:
            raise ValueError(
                "histogram %r delta count %d != bucket total %d"
                % (name, hist.count, observed))
        hist.total = float(total)
        hist.minimum = minimum
        hist.maximum = maximum
        return hist

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%.6f)" % (self.name, self.count,
                                                   self.mean)


class MetricsRegistry:
    """Owner of a component's counters, families, and histograms.

    Instruments are created on first use and keep their identity for
    the registry's lifetime (``reset()`` zeroes values, not identities).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._labelled: Dict[str, LabelledCounter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def labelled(self, name: str) -> LabelledCounter:
        """The labelled family called ``name``, created on first use."""
        if name not in self._labelled:
            self._labelled[name] = LabelledCounter(name)
        return self._labelled[name]

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
                  ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    def reset(self) -> None:
        """Zero every instrument, keeping identities."""
        for counter in self._counters.values():
            counter.value = 0
        for family in self._labelled.values():
            family.values.clear()
        for histogram in self._histograms.values():
            histogram.buckets = [0] * len(histogram.bounds)
            histogram.overflow = 0
            histogram.count = 0
            histogram.total = 0.0
            histogram.minimum = None
            histogram.maximum = None

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of every instrument's current state.

        Histogram entries carry the raw ``bounds``/``buckets``/
        ``overflow``/``sum`` alongside the derived summary so the
        Prometheus exposition (and any later merge) can reconstruct
        the distribution, not just its percentiles.
        """
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "labelled": {name: dict(sorted(family.values.items()))
                         for name, family in sorted(self._labelled.items())},
            "histograms": {
                name: {
                    "count": hist.count,
                    "mean": hist.mean,
                    "min": hist.minimum,
                    "max": hist.maximum,
                    "sum": hist.total,
                    "bounds": list(hist.bounds),
                    "buckets": list(hist.buckets),
                    "overflow": hist.overflow,
                    "percentiles": {
                        ("p%02d" % round(f * 100)): hist.percentile(f)
                        for f in DEFAULT_PERCENTILES} if hist.count else {},
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Additively fold a :meth:`snapshot` payload into this registry.

        The cross-process aggregation primitive: the pre-fork HTTP
        server's parent merges each worker's flushed snapshot into one
        registry before rendering ``/metrics``, and ``serve-stats``
        can aggregate saved snapshot files the same way.  Counters and
        labelled counters add; histograms add bucket-by-bucket (the
        payload carries raw ``bounds``/``buckets``/``overflow``/``sum``
        exactly so this is possible), preserving the upper-inclusive
        edge semantics -- a sample that landed in bucket ``i`` on the
        worker lands in bucket ``i`` here, including ties on a bound
        and overflow past the last one.  ``min``/``max`` merge so
        percentile clamping still brackets the union of samples.

        A histogram with the same name but different bounds cannot be
        merged meaningfully; that raises ``ValueError`` rather than
        silently mis-binning.  Keys outside the three instrument maps
        (e.g. the ``memo``/``fused_plans`` extras of
        ``AnnotationService.stats()``) are ignored.
        """
        counters = snapshot.get("counters") or {}
        for name, value in counters.items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        labelled = snapshot.get("labelled") or {}
        for name, family in labelled.items():  # type: ignore[union-attr]
            target = self.labelled(name)
            for label, value in family.items():
                target.inc(label, int(value))
        histograms = snapshot.get("histograms") or {}
        for name, payload in histograms.items():  # type: ignore[union-attr]
            bounds = tuple(payload.get("bounds") or DEFAULT_LATENCY_BOUNDS)
            hist = self.histogram(name, bounds)
            if hist.bounds != bounds:
                raise ValueError(
                    "cannot merge histogram %r: bounds %r != %r"
                    % (name, bounds, hist.bounds))
            buckets = payload.get("buckets") or [0] * len(bounds)
            if len(buckets) != len(hist.buckets):
                raise ValueError(
                    "cannot merge histogram %r: %d buckets != %d"
                    % (name, len(buckets), len(hist.buckets)))
            for index, count in enumerate(buckets):
                hist.buckets[index] += count
            hist.overflow += payload.get("overflow", 0)
            hist.count += payload.get("count", 0)
            hist.total += payload.get("sum", 0.0)
            low = payload.get("min")
            if low is not None and (hist.minimum is None
                                    or low < hist.minimum):
                hist.minimum = low
            high = payload.get("max")
            if high is not None and (hist.maximum is None
                                     or high > hist.maximum):
                hist.maximum = high

    def render(self) -> str:
        """Human-readable one-screen summary."""
        return render_snapshot(self.snapshot())


def render_snapshot(snapshot: Dict[str, object],
                    top_labels: int = 10) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` payload as text.

    A module-level function so saved snapshots (``repro-hoiho serve
    --metrics-out``) render identically to live registries
    (``repro-hoiho serve-stats --metrics``).
    """
    lines = ["serve metrics"]
    counters: Dict[str, int] = snapshot.get("counters", {})  # type: ignore
    for name in sorted(counters):
        lines.append("  %-24s %d" % (name, counters[name]))
    labelled: Dict[str, Dict[str, int]] = \
        snapshot.get("labelled", {})  # type: ignore
    for name in sorted(labelled):
        family = labelled[name]
        ranked = sorted(family.items(), key=lambda p: (-p[1], p[0]))
        lines.append("  %s (%d labels):" % (name, len(family)))
        for label, value in ranked[:top_labels]:
            lines.append("    %-26s %d" % (label, value))
    histograms: Dict[str, Dict[str, object]] = \
        snapshot.get("histograms", {})  # type: ignore
    for name in sorted(histograms):
        hist = histograms[name]
        if not hist.get("count"):
            lines.append("  %-24s (no samples)" % name)
            continue
        percentiles = hist.get("percentiles", {})
        rendered = "  ".join("%s=%.6fs" % (key, percentiles[key])
                             for key in sorted(percentiles))
        lines.append("  %-24s n=%d mean=%.6fs  %s"
                     % (name, hist["count"], hist["mean"], rendered))
    return "\n".join(lines)


def merge_outcomes(registry: MetricsRegistry, requests: int,
                   annotated: int, errors: int = 0,
                   retries: int = 0) -> None:
    """Fold a bulk chunk's aggregate outcome into ``registry``.

    The bulk engine's worker processes keep no shared state; the parent
    calls this per chunk so ``requests``/``annotated``/``misses`` stay
    live even in parallel runs (per-suffix counts and latencies remain
    a per-request-API feature).  ``errors`` counts hostnames that were
    dead-lettered (they still count as requests and misses) and
    ``retries`` counts retried dispatches; both default to 0 so the
    fault-free path stays unchanged.
    """
    registry.counter("requests").inc(requests)
    registry.counter("annotated").inc(annotated)
    registry.counter("misses").inc(requests - annotated)
    if errors:
        registry.counter("errors").inc(errors)
    if retries:
        registry.counter("retries").inc(retries)
