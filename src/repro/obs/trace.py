"""Nested spans with a JSONL sink: the tracing half of ``repro.obs``.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans nest
(the tracer keeps an open-span stack; a new span's parent is whatever
is on top), time themselves with both the monotonic wall clock and the
process CPU clock, carry free-form attributes and point-in-time events,
and record an error status when an exception escapes their ``with``
block -- the span still closes, so a crashing stage shows up in the
trace instead of vanishing from it.

Finished spans become plain dicts (:meth:`Span.record`): appended to
``Tracer.records`` and, when the tracer was opened with a path or
stream, written out as one JSON line each.  ``load_trace`` reads such a
file back.

**No-op mode.**  :data:`NULL_TRACER` is an always-off tracer whose
``span()`` returns a shared inert span.  Every instrumented call site
defaults to it, so tracing-off costs one method call and an empty
``with`` block per span site -- the ``obs`` section of the benchmark
report measures this at well under the 2% budget
(``repro.bench.run_obs_bench``).

**Worker capture.**  Worker processes cannot share the coordinator's
tracer.  A traced worker entry point builds its own in-memory
``Tracer``, wraps its work in spans, and ships ``Captured(value,
spans)`` back through ``parallel_map``/``stream_map``; the coordinator
calls :meth:`Tracer.adopt` to re-parent the worker's root spans under
its current span.  Span ids carry a per-tracer random prefix, so
records from any number of workers merge without collisions.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from typing import Dict, IO, Iterable, List, Optional, Sequence

#: Span statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One timed operation.  Use as a context manager, or call
    :meth:`finish` explicitly (out-of-order finish is allowed; the
    tracer unlinks the span from wherever it sits in the open stack).
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "attrs",
                 "events", "status", "error", "start", "wall", "cpu",
                 "_start_wall", "_start_cpu", "_open")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: Optional[str],
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.events: List[Dict[str, object]] = []
        self.status = STATUS_OK
        self.error: Optional[str] = None
        self.start = time.time()
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        self.wall: Optional[float] = None
        self.cpu: Optional[float] = None
        self._open = True

    # -- annotation ----------------------------------------------------------

    def set(self, **attrs: object) -> "Span":
        """Merge ``attrs`` into the span's attributes."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event (offset from the span start)."""
        entry: Dict[str, object] = {
            "name": name,
            "at": time.perf_counter() - self._start_wall,
        }
        if attrs:
            entry["attrs"] = attrs
        self.events.append(entry)

    def fail(self, exc: BaseException) -> None:
        """Mark the span failed (kept open until :meth:`finish`)."""
        self.status = STATUS_ERROR
        self.error = "%s: %s" % (type(exc).__name__, exc)

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        """Close the span and hand the record to the tracer (idempotent)."""
        if not self._open:
            return
        self._open = False
        self.wall = time.perf_counter() - self._start_wall
        self.cpu = time.process_time() - self._start_cpu
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.fail(exc)
        self.finish()
        return False

    def record(self) -> Dict[str, object]:
        """The JSONL-ready view of a finished span."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": os.getpid(),
            "start": self.start,
            "wall": self.wall if self.wall is not None else 0.0,
            "cpu": self.cpu if self.cpu is not None else 0.0,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
            "events": self.events,
        }

    def __repr__(self) -> str:
        return "Span(%s, id=%s, open=%s)" % (self.name, self.span_id,
                                             self._open)


class _NullSpan:
    """The shared inert span :data:`NULL_TRACER` hands out."""

    __slots__ = ()

    span_id = None
    events: List[Dict[str, object]] = []

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> None:
        pass

    def fail(self, exc: BaseException) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Factory and sink for spans.

    ``path``/``stream`` select a JSONL sink; without one the tracer is
    purely in-memory (``records``) -- the mode worker processes use.
    The tracer is single-threaded by design: the pipeline's concurrency
    is process-based, and worker records merge via :meth:`adopt`.
    """

    enabled = True

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[IO[str]] = None) -> None:
        self._prefix = uuid.uuid4().hex[:8]
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self.records: List[Dict[str, object]] = []
        self.path = path
        self._stream = stream
        self._owns_stream = False
        if path is not None and stream is None:
            self._stream = open(path, "w", encoding="utf-8")
            self._owns_stream = True

    # -- span creation -------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span nested under the current one (if any)."""
        span_id = "%s-%d" % (self._prefix, next(self._ids))
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, name, span_id, parent, attrs)
        self._stack.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attrs: object) -> None:
        """Record an event on the current span (no-op when none open)."""
        if self._stack:
            self._stack[-1].event(name, **attrs)

    # -- record flow ---------------------------------------------------------

    def _finish(self, span: Span) -> None:
        try:
            self._stack.remove(span)
        except ValueError:
            pass  # adopted/foreign span; nothing to unlink
        self._emit(span.record())

    def _emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._stream.flush()

    def adopt(self, records: Iterable[Dict[str, object]],
              parent_id: Optional[str] = None) -> None:
        """Merge worker-captured span records into this trace.

        Records whose parent is ``None`` (the worker's root spans) are
        re-parented under ``parent_id`` -- by default the coordinator's
        current span -- so the merged trace reads as one tree.  Ids are
        preserved (each tracer's random prefix keeps them unique).
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        for record in records:
            if record.get("parent") is None and parent_id is not None:
                record = dict(record)
                record["parent"] = parent_id
            self._emit(record)

    def export(self) -> List[Dict[str, object]]:
        """A copy of every finished record (the worker shipping form)."""
        return list(self.records)

    def close(self) -> None:
        """Finish any still-open spans (innermost first) and close an
        owned sink."""
        for span in reversed(list(self._stack)):
            span.finish()
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class NullTracer:
    """The always-off tracer: every call is an inert constant."""

    enabled = False
    records: Sequence[Dict[str, object]] = ()
    path = None
    current = None

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        pass

    def adopt(self, records: Iterable[Dict[str, object]],
              parent_id: Optional[str] = None) -> None:
        pass

    def export(self) -> List[Dict[str, object]]:
        return []

    def close(self) -> None:
        pass


#: The shared no-op tracer every instrumented call site defaults to.
NULL_TRACER = NullTracer()


class Captured:
    """A worker's return value bundled with its captured span records."""

    __slots__ = ("value", "spans")

    def __init__(self, value: object,
                 spans: List[Dict[str, object]]) -> None:
        self.value = value
        self.spans = spans


def unwrap(result: object) -> object:
    """The bare value of a worker result, captured or not.

    Poison substitutes injected by ``on_poison`` hooks are plain
    values, so traced fan-outs unwrap through this instead of assuming
    every element is a :class:`Captured`.
    """
    return result.value if isinstance(result, Captured) else result


def adopt_all(tracer: "Tracer", results: Iterable[object],
              parent_id: Optional[str] = None) -> List[object]:
    """Adopt every captured result's spans; returns the bare values."""
    values = []
    for result in results:
        if isinstance(result, Captured):
            tracer.adopt(result.spans, parent_id=parent_id)
            values.append(result.value)
        else:
            values.append(result)
    return values


# -- resilience bridging -----------------------------------------------------

def retry_to_span(span: Span, site: str):
    """An ``on_retry`` callback that records each retry as a span event.

    The dispatcher calls ``on_retry(item, attempts, exc)`` parent-side;
    ``exc`` is ``None`` when the retry was charged by a pool loss
    rather than a raised fault.
    """
    def on_retry(item: object, attempts: int,
                 exc: Optional[BaseException]) -> None:
        span.event("retry", site=site, attempts=attempts,
                   error=type(exc).__name__ if exc is not None
                   else "pool-loss")
    return on_retry


def resilience_to_span(span: Span, site: str, stats: object) -> None:
    """Summarise a fan-out's :class:`ResilienceStats` as span events.

    Retries were already recorded live by :func:`retry_to_span`; pool
    rebuilds, per-item timeouts, degradation, and poisoned items are
    only knowable from the stats object after the fan-out drains.
    """
    if getattr(stats, "pool_losses", 0):
        span.event("pool-rebuild", site=site, count=stats.pool_losses)
    if getattr(stats, "timeouts", 0):
        span.event("timeout", site=site, count=stats.timeouts)
    if getattr(stats, "poisoned", 0):
        span.event("poisoned", site=site, count=stats.poisoned)
    if getattr(stats, "degraded", False):
        span.event("degrade-to-serial", site=site)
    span.set(retries=getattr(stats, "retries", 0),
             pool_losses=getattr(stats, "pool_losses", 0))


def load_trace(path: str) -> List[Dict[str, object]]:
    """Read a trace JSONL file back into span records (blank-line
    tolerant; raises ``ValueError`` on a corrupt line)."""
    records: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError("%s:%d: not a JSON span record (%s)"
                                 % (path, number, exc))
            if not isinstance(record, dict):
                raise ValueError("%s:%d: span record is not an object"
                                 % (path, number))
            records.append(record)
    return records
