"""Prometheus text exposition for any :class:`MetricsRegistry` snapshot.

One renderer serves every registry in the repo (serve, learner,
pipeline, store): it consumes the JSON-ready dict produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` rather than the live
registry, so saved snapshots (``--metrics-out`` files, manifest metric
sections) render identically to in-process state.

The output follows the Prometheus text format, version 0.0.4:

* plain counters become ``<ns>_<name>`` with ``# TYPE ... counter``;
* labelled counter families become one sample per label,
  ``<ns>_<name>{<label_key>="..."}``, with label values escaped per the
  format rules (backslash, double-quote, newline);
* histograms become cumulative ``_bucket{le="..."}`` samples -- the
  upper-inclusive bucket semantics of :class:`Histogram` map directly
  onto Prometheus's ``le`` convention -- plus ``{le="+Inf"}``, ``_sum``
  and ``_count``.

Metric names are sanitised to ``[a-zA-Z_][a-zA-Z0-9_]*`` (every other
character becomes ``_``).
"""

from __future__ import annotations

import re
from typing import Dict, List

_NAME_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _metric_name(namespace: str, name: str) -> str:
    full = "%s_%s" % (namespace, name) if namespace else name
    full = re.sub(r"[^a-zA-Z0-9_]", "_", full)
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: Dict[str, object], namespace: str = "repro",
                  label_key: str = "label") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    ``label_key`` names the single label dimension of labelled counter
    families (the registry stores one label per family, e.g. the
    suffix of an extraction).
    """
    lines: List[str] = []

    counters: Dict[str, int] = snapshot.get("counters", {})  # type: ignore
    for name in sorted(counters):
        metric = _metric_name(namespace, name)
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _format_value(counters[name])))

    labelled: Dict[str, Dict[str, int]] = \
        snapshot.get("labelled", {})  # type: ignore
    for name in sorted(labelled):
        metric = _metric_name(namespace, name)
        lines.append("# TYPE %s counter" % metric)
        family = labelled[name]
        for label in sorted(family):
            lines.append('%s{%s="%s"} %s'
                         % (metric, label_key, _escape_label(label),
                            _format_value(family[label])))

    histograms: Dict[str, Dict[str, object]] = \
        snapshot.get("histograms", {})  # type: ignore
    for name in sorted(histograms):
        metric = _metric_name(namespace, name)
        hist = histograms[name]
        lines.append("# TYPE %s histogram" % metric)
        bounds = hist.get("bounds") or []
        buckets = hist.get("buckets") or []
        cumulative = 0
        for bound, bucket in zip(bounds, buckets):
            cumulative += bucket
            lines.append('%s_bucket{le="%s"} %d'
                         % (metric, _format_value(bound), cumulative))
        count = hist.get("count", 0)
        lines.append('%s_bucket{le="+Inf"} %d' % (metric, count))
        lines.append("%s_sum %s"
                     % (metric, _format_value(hist.get("sum", 0.0))))
        lines.append("%s_count %d" % (metric, count))

    return "\n".join(lines) + ("\n" if lines else "")
