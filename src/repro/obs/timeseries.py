"""The time axis of ``repro.obs``: snapshot deltas, rolling windows,
and a persisted metrics history.

Everything the registry emits is cumulative-since-boot, which answers
"how much ever" but never "how much lately".  This module adds the
three pieces that turn cumulative snapshots into time series:

* :func:`diff_snapshot` -- the additive inverse of
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`: exact
  per-counter / per-label / per-bucket deltas between two snapshots of
  the same registry.  The delta payload has the same shape as a
  snapshot, so it merges back through ``merge_snapshot`` unchanged --
  ``merge_snapshot(a, diff_snapshot(a, cur))`` reproduces ``cur``
  exactly (property-tested in ``tests/props/test_snapshot_algebra.py``).
* :class:`RollingWindows` -- a ring buffer of aligned time windows
  (e.g. 10 s x 60).  Feed it periodic cumulative snapshots; it folds
  the deltas into the window each sample lands in and answers windowed
  questions: request rate over the covered span, windowed histogram
  percentiles (via :meth:`~repro.obs.metrics.Histogram.from_delta`, so
  the edge-case-hardened percentile code is reused, not reimplemented).
* :class:`HistoryStore` -- timestamped snapshots appended as JSONL
  with size/age retention, so successive server lifetimes (and the
  shadow ledgers they carried) can be compared across days, not just
  within one process.

Delta semantics worth knowing:

* Counters, labelled counters, histogram buckets/overflow/count/sum
  subtract exactly; a *negative* delta anywhere raises ``ValueError``
  ("cur is not a successor of prev" -- a worker restart or a ledger
  epoch clear).  :meth:`RollingWindows.record` treats that as a reset
  and re-baselines instead of raising.
* Zero deltas are omitted (a counter that did not move does not appear
  in the delta), so an idle interval diffs to an empty payload.
* Histogram ``min``/``max`` are not additively invertible; the delta
  carries the *current* observed extremes, which bracket every sample
  in the window (exact whenever the window saw the extreme) and keep
  ``merge_snapshot`` round trips exact.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry

#: Default rolling-window geometry: 10 s x 60 = a ten-minute horizon.
DEFAULT_WINDOW_SECONDS = 10.0
DEFAULT_WINDOW_COUNT = 60

#: Default history retention: 16 MiB of JSONL, entries kept 14 days.
DEFAULT_HISTORY_MAX_BYTES = 16 * 1024 * 1024
DEFAULT_HISTORY_MAX_AGE = 14 * 24 * 3600.0


def _diff_counters(prev: Mapping, cur: Mapping, what: str) -> Dict[str, int]:
    """Exact name->delta map; raises when ``cur`` regressed."""
    deltas: Dict[str, int] = {}
    for name, value in cur.items():
        delta = int(value) - int(prev.get(name, 0))
        if delta < 0:
            raise ValueError(
                "%s %r shrank from %s to %s: cur is not a successor "
                "of prev" % (what, name, prev.get(name), value))
        if delta:
            deltas[name] = delta
    for name in prev:
        if name not in cur:
            raise ValueError(
                "%s %r vanished from cur: not a successor of prev"
                % (what, name))
    return deltas


def diff_snapshot(prev: Mapping, cur: Mapping) -> Dict[str, object]:
    """The exact additive delta taking ``prev`` to ``cur``.

    Both arguments are :meth:`MetricsRegistry.snapshot` payloads of the
    *same* registry at two points in time (``prev`` earlier).  The
    result has snapshot shape -- ``counters``/``labelled``/
    ``histograms`` maps carrying only the instruments that moved -- so
    it feeds straight back into ``merge_snapshot``:
    ``merge_snapshot(prev, diff_snapshot(prev, cur)) == cur``.

    Raises ``ValueError`` when ``cur`` is not a successor of ``prev``
    (any counter, label, bucket, or histogram count went backwards, or
    an instrument disappeared) -- the signature of a process restart
    or an epoch clear, which callers must treat as a new baseline
    rather than a delta.  Extra snapshot keys (``memo``, ``shadow``,
    ``ts``...) are ignored, exactly as ``merge_snapshot`` ignores them.
    """
    delta: Dict[str, object] = {
        "counters": _diff_counters(prev.get("counters") or {},
                                   cur.get("counters") or {}, "counter"),
        "labelled": {},
        "histograms": {},
    }
    prev_labelled = prev.get("labelled") or {}
    for name, family in (cur.get("labelled") or {}).items():
        family_delta = _diff_counters(prev_labelled.get(name) or {},
                                      family, "label %r of" % name)
        if family_delta:
            delta["labelled"][name] = family_delta
    for name in prev_labelled:
        if name not in (cur.get("labelled") or {}):
            raise ValueError("labelled family %r vanished from cur"
                             % name)

    prev_hists = prev.get("histograms") or {}
    for name, payload in (cur.get("histograms") or {}).items():
        before = prev_hists.get(name) or {}
        bounds = list(payload.get("bounds") or [])
        if before and list(before.get("bounds") or []) != bounds:
            raise ValueError(
                "histogram %r changed bounds between snapshots" % name)
        cur_buckets = list(payload.get("buckets") or [0] * len(bounds))
        prev_buckets = list(before.get("buckets")
                            or [0] * len(cur_buckets))
        if len(prev_buckets) != len(cur_buckets):
            raise ValueError(
                "histogram %r changed bucket count between snapshots"
                % name)
        buckets = []
        for index, count in enumerate(cur_buckets):
            bucket_delta = count - prev_buckets[index]
            if bucket_delta < 0:
                raise ValueError(
                    "histogram %r bucket %d shrank: cur is not a "
                    "successor of prev" % (name, index))
            buckets.append(bucket_delta)
        overflow = payload.get("overflow", 0) - before.get("overflow", 0)
        count = payload.get("count", 0) - before.get("count", 0)
        if overflow < 0 or count < 0:
            raise ValueError(
                "histogram %r count shrank: cur is not a successor of "
                "prev" % name)
        if count == 0 and not any(buckets) and not overflow:
            continue
        total = payload.get("sum", 0.0) - before.get("sum", 0.0)
        hist = Histogram.from_delta(name, bounds, buckets,
                                    overflow=overflow, count=count,
                                    total=total,
                                    minimum=payload.get("min"),
                                    maximum=payload.get("max"))
        delta["histograms"][name] = {
            "count": hist.count,
            "mean": hist.mean,
            # The window's extremes are not additively recoverable;
            # carry the cumulative ones, which bracket every windowed
            # sample and keep merge round trips exact.
            "min": payload.get("min"),
            "max": payload.get("max"),
            "sum": total,
            "bounds": bounds,
            "buckets": buckets,
            "overflow": overflow,
            "percentiles": {
                "p%02d" % round(f * 100): hist.percentile(f)
                for f in (0.50, 0.90, 0.99)} if hist.count else {},
        }
    for name in prev_hists:
        if name not in (cur.get("histograms") or {}):
            raise ValueError("histogram %r vanished from cur" % name)
    return delta


def is_empty_delta(delta: Mapping) -> bool:
    """Whether a :func:`diff_snapshot` payload carries no change."""
    return not (delta.get("counters") or delta.get("labelled")
                or delta.get("histograms"))


class RollingWindows:
    """Aligned time windows folding periodic snapshot deltas.

    Feed :meth:`record` the registry's cumulative snapshot on a steady
    cadence (the HTTP workers do it from their flush loop); each call
    diffs against the previous snapshot and merges the delta into the
    window its timestamp lands in.  Windows are aligned to multiples
    of ``width_seconds`` since the epoch, and only the newest ``count``
    are kept -- a 10 s x 60 geometry answers "over the last ten
    minutes" with 10-second resolution.

    A non-successor snapshot (worker restart, shadow-ledger epoch
    clear) re-baselines silently: the interval that contained the
    reset contributes nothing, every later one diffs normally.

    Thread-safe: the serving path and the flush loop may both call in.
    """

    def __init__(self, width_seconds: float = DEFAULT_WINDOW_SECONDS,
                 count: int = DEFAULT_WINDOW_COUNT) -> None:
        if width_seconds <= 0:
            raise ValueError("window width must be > 0 seconds, got %r"
                             % width_seconds)
        if count < 1:
            raise ValueError("window count must be >= 1, got %d" % count)
        self.width_seconds = float(width_seconds)
        self.count = count
        self._lock = threading.Lock()
        self._slots: Dict[int, MetricsRegistry] = {}
        self._last: Optional[Mapping] = None
        self._first_ts: Optional[float] = None
        self._resets = 0

    @property
    def resets(self) -> int:
        """How many samples re-baselined instead of diffing."""
        return self._resets

    def record(self, snapshot: Mapping, ts: Optional[float] = None) -> bool:
        """Fold one cumulative snapshot in; returns whether it diffed.

        The first sample (and any non-successor sample) only sets the
        baseline and returns ``False``; every later one contributes its
        delta to the aligned window and returns ``True``.
        """
        now = time.time() if ts is None else ts
        with self._lock:
            if self._first_ts is None:
                self._first_ts = now
            if self._last is None:
                self._last = snapshot
                return False
            try:
                delta = diff_snapshot(self._last, snapshot)
            except ValueError:
                self._last = snapshot
                self._first_ts = now  # rates restart with the baseline
                self._slots.clear()
                self._resets += 1
                return False
            self._last = snapshot
            if not is_empty_delta(delta):
                slot = int(now // self.width_seconds)
                registry = self._slots.get(slot)
                if registry is None:
                    registry = self._slots[slot] = MetricsRegistry()
                registry.merge_snapshot(delta)
            self._evict(now)
            return True

    def _evict(self, now: float) -> None:
        floor = int(now // self.width_seconds) - self.count + 1
        for slot in [s for s in self._slots if s < floor]:
            del self._slots[slot]

    def covered_seconds(self, now: Optional[float] = None) -> float:
        """The span of wall time the live windows describe."""
        now = time.time() if now is None else now
        with self._lock:
            if self._first_ts is None:
                return 0.0
        horizon = self.width_seconds * self.count
        return max(0.0, min(now - self._first_ts, horizon))

    def window_snapshot(self, now: Optional[float] = None,
                        ) -> Dict[str, object]:
        """One merged delta snapshot over every live window."""
        now = time.time() if now is None else now
        merged = MetricsRegistry()
        with self._lock:
            self._evict(now)
            for slot in sorted(self._slots):
                merged.merge_snapshot(self._slots[slot].snapshot())
        return merged.snapshot()

    def rate(self, counter: str, now: Optional[float] = None) -> float:
        """Windowed per-second rate of ``counter`` (0 when uncovered)."""
        now = time.time() if now is None else now
        covered = self.covered_seconds(now)
        if covered <= 0:
            return 0.0
        counters = self.window_snapshot(now).get("counters") or {}
        return counters.get(counter, 0) / covered

    def percentiles(self, histogram: str,
                    fractions: Iterable[float] = (0.50, 0.90, 0.99),
                    now: Optional[float] = None,
                    ) -> Dict[str, float]:
        """Windowed percentiles of ``histogram`` (empty when no samples).

        Rebuilds a real :class:`Histogram` from the windowed bucket
        deltas via :meth:`Histogram.from_delta` so the interpolation
        and clamping behaviour is byte-for-byte the cumulative one.
        """
        payload = (self.window_snapshot(now).get("histograms")
                   or {}).get(histogram)
        if not payload or not payload.get("count"):
            return {}
        hist = Histogram.from_delta(
            histogram, payload.get("bounds") or [],
            payload.get("buckets") or [],
            overflow=payload.get("overflow", 0),
            count=payload.get("count", 0),
            total=payload.get("sum", 0.0),
            minimum=payload.get("min"), maximum=payload.get("max"))
        return {"p%02d" % round(fraction * 100): hist.percentile(fraction)
                for fraction in fractions}


class HistoryStore:
    """Timestamped snapshots on disk: one JSON line per append.

    Each line is ``{"ts": <epoch seconds>, "snapshot": {...}}`` plus
    any extra metadata the caller attached -- the serving history keeps
    the ``shadow`` ledger extra inside the snapshot, so candidates can
    be compared across server lifetimes (the ROADMAP's persisted-ledger
    item).  Appends are atomic-per-line (one ``write`` call) and
    retention is enforced on append: entries older than ``max_age``
    drop, and the file is trimmed oldest-first while it exceeds
    ``max_bytes`` (rewritten via temp file + ``os.replace``, so a
    concurrent reader never sees a torn file).
    """

    def __init__(self, path: str,
                 max_bytes: int = DEFAULT_HISTORY_MAX_BYTES,
                 max_age_seconds: Optional[float] = DEFAULT_HISTORY_MAX_AGE,
                 ) -> None:
        if max_bytes < 1:
            raise ValueError("history max_bytes must be >= 1, got %d"
                             % max_bytes)
        self.path = path
        self.max_bytes = max_bytes
        self.max_age_seconds = max_age_seconds
        self._lock = threading.Lock()

    def append(self, snapshot: Mapping, ts: Optional[float] = None,
               **extra: object) -> Dict[str, object]:
        """Append one timestamped snapshot; returns the stored entry."""
        entry: Dict[str, object] = {"ts": time.time() if ts is None
                                    else ts}
        entry.update(extra)
        entry["snapshot"] = snapshot
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
            self._prune_locked(entry["ts"])
        return entry

    def entries(self, since: Optional[float] = None,
                ) -> List[Dict[str, object]]:
        """Every retained entry, oldest first (optionally ts-filtered).

        Corrupt or foreign lines are skipped, not fatal -- a torn tail
        from a crashed writer must not make the history unreadable.
        """
        entries: List[Dict[str, object]] = []
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(entry, dict) or "ts" not in entry:
                        continue
                    if since is not None and entry["ts"] < since:
                        continue
                    entries.append(entry)
        except OSError:
            return []
        entries.sort(key=lambda e: e["ts"])
        return entries

    def prune(self, now: Optional[float] = None) -> None:
        """Apply retention without appending."""
        with self._lock:
            self._prune_locked(time.time() if now is None else now)

    def _prune_locked(self, now: float) -> None:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        needs_age = self.max_age_seconds is not None
        if size <= self.max_bytes and not needs_age:
            return
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        kept: List[Tuple[float, str]] = []
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
                entry_ts = float(entry["ts"])
            except (ValueError, KeyError, TypeError):
                continue
            if (self.max_age_seconds is not None
                    and now - entry_ts > self.max_age_seconds):
                continue
            kept.append((entry_ts, stripped + "\n"))
        kept.sort(key=lambda pair: pair[0])
        while kept and sum(len(line) for _, line in kept) > self.max_bytes:
            kept.pop(0)
        if len(kept) == len(lines) \
                and all(old == new for old, (_, new) in zip(lines, kept)):
            return
        parent = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(prefix=".history.", dir=parent)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.writelines(line for _, line in kept)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def history_deltas(entries: Iterable[Mapping],
                   ) -> List[Dict[str, object]]:
    """Per-interval deltas from a history's cumulative entries.

    Entries within one server lifetime diff exactly; the first entry of
    a lifetime (no predecessor, or a predecessor it is not a successor
    of -- counters restarted from zero) *is* its own delta, because a
    fresh registry accumulates from zero.  The result is a list of
    ``{"ts", "seconds", "delta"}`` rows, where ``seconds`` is the
    interval the delta covers (``None`` for a lifetime's first entry),
    ready for SLO evaluation over any trailing window.
    """
    rows: List[Dict[str, object]] = []
    prev: Optional[Mapping] = None
    prev_ts: Optional[float] = None
    for entry in entries:
        snapshot = entry.get("snapshot") or {}
        ts = entry.get("ts")
        if prev is None:
            delta: Mapping = snapshot
            seconds: Optional[float] = None
        else:
            try:
                delta = diff_snapshot(prev, snapshot)
                seconds = (ts - prev_ts
                           if ts is not None and prev_ts is not None
                           else None)
            except ValueError:
                delta = snapshot  # new lifetime: cumulative == delta
                seconds = None
        rows.append({"ts": ts, "seconds": seconds, "delta": delta})
        prev, prev_ts = snapshot, ts
    return rows
