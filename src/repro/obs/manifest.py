"""Run manifests: one JSON document describing an entire pipeline run.

Every traced run (``repro-hoiho run``, experiment commands with
``--trace-out``) writes a ``manifest.json`` next to its trace: the
config fingerprint that keyed the artifact store, toolchain and schema
versions, the seed, per-stage wall/cpu durations aggregated from the
trace's top-level spans, a metrics snapshot, and the trace file path.
The manifest is the durable record a later reader needs to answer
"what exactly produced this result and where did the time go" without
re-running anything.

Schemas for both the manifest and the trace JSONL records are checked
in under ``docs/schemas/`` and mirrored here as code constants (a test
keeps them in sync).  Because the repo is dependency-free, validation
uses :func:`validate_schema`, a small interpreter of the JSON-Schema
subset those schemas use (``type``, ``required``, ``properties``,
``items``, ``enum``) -- enough for CI to reject a malformed manifest
without pulling in ``jsonschema``.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Dict, Iterable, List, Optional

MANIFEST_SCHEMA_VERSION = 1

#: JSON-Schema (subset) for manifest.json; mirrored at
#: docs/schemas/manifest.schema.json.
MANIFEST_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["manifest_schema", "fingerprint", "versions", "seed",
                 "scale", "stages", "wall_seconds", "metrics", "trace"],
    "properties": {
        "manifest_schema": {"type": "integer"},
        "fingerprint": {"type": "string"},
        "versions": {
            "type": "object",
            "required": ["repro", "python", "store_schema",
                         "bench_schema", "platform"],
            "properties": {
                "repro": {"type": "string"},
                "python": {"type": "string"},
                "store_schema": {"type": "integer"},
                "bench_schema": {"type": "integer"},
                "platform": {"type": "string"},
            },
        },
        "seed": {"type": "integer"},
        "scale": {"type": "string"},
        "stages": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "wall", "cpu", "status"],
                "properties": {
                    "name": {"type": "string"},
                    "wall": {"type": "number"},
                    "cpu": {"type": "number"},
                    "status": {"enum": ["ok", "error"]},
                    "spans": {"type": "integer"},
                },
            },
        },
        "wall_seconds": {"type": "number"},
        "metrics": {"type": "object"},
        "trace": {"type": ["string", "null"]},
    },
}

#: JSON-Schema (subset) for one trace JSONL record; mirrored at
#: docs/schemas/trace.schema.json.
TRACE_RECORD_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["id", "parent", "name", "pid", "start", "wall", "cpu",
                 "status", "attrs", "events"],
    "properties": {
        "id": {"type": "string"},
        "parent": {"type": ["string", "null"]},
        "name": {"type": "string"},
        "pid": {"type": "integer"},
        "start": {"type": "number"},
        "wall": {"type": "number"},
        "cpu": {"type": "number"},
        "status": {"enum": ["ok", "error"]},
        "error": {"type": ["string", "null"]},
        "attrs": {"type": "object"},
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "at"],
                "properties": {
                    "name": {"type": "string"},
                    "at": {"type": "number"},
                    "attrs": {"type": "object"},
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_schema(value: object, schema: Dict[str, object],
                    path: str = "$") -> List[str]:
    """Check ``value`` against the JSON-Schema subset used by this repo.

    Supports ``type`` (string or list of strings), ``required``,
    ``properties``, ``items``, and ``enum``.  Returns a list of
    human-readable error strings -- empty means valid.
    """
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append("%s: expected %s, got %s"
                          % (path, "/".join(types), type(value).__name__))
            return errors
    if "enum" in schema and value not in schema["enum"]:  # type: ignore
        errors.append("%s: %r not in %r" % (path, value, schema["enum"]))
    if isinstance(value, dict):
        for key in schema.get("required", ()):  # type: ignore
            if key not in value:
                errors.append("%s: missing required key %r" % (path, key))
        properties: Dict[str, Dict[str, object]] = \
            schema.get("properties", {})  # type: ignore
        for key, subschema in properties.items():
            if key in value:
                errors.extend(validate_schema(value[key], subschema,
                                              "%s.%s" % (path, key)))
    if isinstance(value, list) and "items" in schema:
        subschema = schema["items"]  # type: ignore
        for index, item in enumerate(value):
            errors.extend(validate_schema(item, subschema,
                                          "%s[%d]" % (path, index)))
    return errors


def stage_durations(records: Iterable[Dict[str, object]],
                    ) -> List[Dict[str, object]]:
    """Aggregate a trace's top-level spans into per-stage rows.

    Top-level means ``parent is None`` after any worker adoption --
    i.e. the coordinator's own stage spans.  Rows keep the trace's
    chronological order; repeated stage names (e.g. two ``learn.run``
    invocations) aggregate into one row with a span count.
    """
    order: List[str] = []
    rows: Dict[str, Dict[str, object]] = {}
    for record in records:
        if record.get("parent") is not None:
            continue
        name = str(record.get("name", "?"))
        if name not in rows:
            order.append(name)
            rows[name] = {"name": name, "wall": 0.0, "cpu": 0.0,
                          "status": "ok", "spans": 0}
        row = rows[name]
        row["wall"] = float(row["wall"]) + float(record.get("wall", 0.0))
        row["cpu"] = float(row["cpu"]) + float(record.get("cpu", 0.0))
        row["spans"] = int(row["spans"]) + 1
        if record.get("status") == "error":
            row["status"] = "error"
    return [rows[name] for name in order]


def build_manifest(fingerprint: str, seed: int, scale: str,
                   records: Iterable[Dict[str, object]],
                   wall_seconds: float,
                   metrics: Optional[Dict[str, object]] = None,
                   trace_path: Optional[str] = None,
                   ) -> Dict[str, object]:
    """Assemble the manifest document for one run."""
    from repro import __version__
    from repro.bench import BENCH_VERSION
    from repro.store import STORE_SCHEMA_VERSION

    return {
        "manifest_schema": MANIFEST_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "versions": {
            "repro": __version__,
            "python": "%d.%d.%d" % sys.version_info[:3],
            "store_schema": STORE_SCHEMA_VERSION,
            "bench_schema": BENCH_VERSION,
            "platform": platform.platform(),
        },
        "seed": seed,
        "scale": scale,
        "stages": stage_durations(records),
        "wall_seconds": wall_seconds,
        "metrics": metrics if metrics is not None else {},
        "trace": trace_path,
    }


def write_manifest(path: str, manifest: Dict[str, object]) -> None:
    """Validate and write ``manifest`` as pretty-printed JSON."""
    errors = validate_schema(manifest, MANIFEST_SCHEMA)
    if errors:
        raise ValueError("manifest does not match schema:\n  "
                         + "\n  ".join(errors))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_manifest_file(path: str) -> List[str]:
    """Errors for a manifest file (empty list means valid)."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return validate_schema(document, MANIFEST_SCHEMA)


def validate_trace_file(path: str) -> List[str]:
    """Errors across every record of a trace JSONL file."""
    from repro.obs.trace import load_trace
    errors: List[str] = []
    for number, record in enumerate(load_trace(path), 1):
        for error in validate_schema(record, TRACE_RECORD_SCHEMA):
            errors.append("record %d: %s" % (number, error))
    return errors
