"""RouterToAsAssignment: the 2010-2017 ITDK annotation baseline."""

from repro.rtaa.rtaa import assign_asns

__all__ = ["assign_asns"]
