"""RouterToAsAssignment (Huffaker et al. 2010).

The best-performing heuristic from that work, as the paper summarises it
(section 2.1): annotate each router with the AS announcing the longest
matching prefix for the *most* of its interfaces (election), breaking
ties by choosing the AS with the smaller degree.  Because border routers
of stub networks are usually observed only through their
provider-supplied address, this heuristic systematically mislabels them
-- the error mode bdrmapIT later fixed and figure 6 quantifies.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.alias.midar import AliasResolution
from repro.asn.bgp import IXP_ASN, RouteTable, UNKNOWN_ASN
from repro.asn.relationships import ASRelationships


def assign_asns(resolution: AliasResolution, route_table: RouteTable,
                relationships: Optional[ASRelationships] = None,
                ) -> Dict[str, int]:
    """Annotate every inferred node via election + degree tie-break.

    Nodes whose every interface is unrouted or IXP-addressed stay
    unannotated (absent from the result).
    """
    annotations: Dict[str, int] = {}
    for node_id in sorted(resolution.nodes):
        node = resolution.nodes[node_id]
        votes: Counter = Counter()
        for address in node.addresses:
            origin = route_table.origin(address)
            if origin == UNKNOWN_ASN:
                continue
            if origin == IXP_ASN:
                # RouterToAsAssignment predates IXP awareness: the LAN
                # prefix counts for whatever AS it is registered to --
                # the misattribution bdrmap-era methods later fixed.
                # The /24 LAN is a weaker longest-prefix match than the
                # member's own space, so it carries half a vote: any
                # real interface outvotes it, but LAN-only routers are
                # credited to the exchange operator.
                org = route_table.ixp_org(address)
                if org is None:
                    continue
                votes[org] += 0.5
                continue
            votes[origin] += 1
        if not votes:
            continue
        top_count = max(votes.values())
        leaders = sorted(asn for asn, count in votes.items()
                         if count == top_count)
        if len(leaders) > 1 and relationships is not None:
            leaders.sort(key=lambda asn: (relationships.degree(asn), asn))
        annotations[node_id] = leaders[0]
    return annotations
