"""Assemble an ITDK snapshot from a traceroute campaign.

The builder is the measurement-side glue: run (or accept) a campaign's
traces, collect every observed address, resolve aliases, and attach the
PTR names the naming layer assigned.  AS annotation is done separately by
:mod:`repro.rtaa` or :mod:`repro.bdrmapit` so the same snapshot can carry
either method's inferences (as the real ITDKs did across eras).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.alias.midar import resolve_aliases
from repro.itdk.snapshot import ITDKSnapshot
from repro.naming.assigner import NamingOutcome, host_hostname
from repro.topology.world import World
from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.probe import Trace
from repro.traceroute.routing import RoutingModel


@dataclass
class BuildConfig:
    """Knobs for ITDK assembly."""

    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    alias_split_rate: float = 0.10
    alias_merge_rate: float = 0.0
    alias_augment_rate: float = 0.65


def build_snapshot(world: World, naming: NamingOutcome, seed: int,
                   label: str,
                   routing: Optional[RoutingModel] = None,
                   config: Optional[BuildConfig] = None,
                   traces: Optional[List[Trace]] = None,
                   ) -> "BuiltSnapshot":
    """Run a campaign (unless ``traces`` given) and build the snapshot."""
    config = config or BuildConfig()
    if traces is None:
        if routing is None:
            routing = RoutingModel(world.graph)
        traces = run_campaign(world, routing, seed, config.campaign)

    observed: Set[int] = set()
    for trace in traces:
        observed.update(trace.responsive_hops())

    resolution = resolve_aliases(world, observed, seed,
                                 split_rate=config.alias_split_rate,
                                 merge_rate=config.alias_merge_rate,
                                 augment_rate=config.alias_augment_rate)
    snapshot = ITDKSnapshot(label=label, resolution=resolution)
    for address in sorted(resolution.node_of_address):
        record = naming.record(address)
        if record is None:
            # Destination hosts may still have (IP-derived) PTR names.
            record = host_hostname(world, address, naming, seed)
        if record is not None:
            snapshot.hostnames[address] = record.hostname
    return BuiltSnapshot(snapshot=snapshot, traces=traces)


@dataclass
class BuiltSnapshot:
    """A snapshot plus the raw traces it was built from.

    The traces feed the annotation methods (they need the hop sequences,
    which the published ITDK files do not carry).
    """

    snapshot: ITDKSnapshot
    traces: List[Trace]
