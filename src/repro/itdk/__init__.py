"""Internet Topology Data Kit (ITDK) snapshots.

An ITDK snapshot bundles what CAIDA publishes: inferred routers (nodes)
with their interface addresses, per-address hostnames from PTR lookups,
and per-node AS annotations produced by RouterToAsAssignment or bdrmapIT.
:mod:`repro.itdk.snapshot` defines the data model with ITDK-flavoured
text serialization; :mod:`repro.itdk.builder` assembles snapshots from
traceroute campaigns over a synthetic world.
"""

from repro.itdk.snapshot import ITDKSnapshot
from repro.itdk.builder import BuildConfig, build_snapshot

__all__ = ["ITDKSnapshot", "BuildConfig", "build_snapshot"]
