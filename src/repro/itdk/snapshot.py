"""ITDK snapshot data model and ITDK-flavoured serialization.

The text formats mirror CAIDA's published files closely enough that a
reader familiar with the real ITDK will recognise them:

* nodes:      ``node N1:  4.1.2.3 4.1.2.9``
* node-AS:    ``node.AS N1 64500 bdrmapit``
* DNS names:  ``1579823999 4.1.2.3 ae2.cr1.fra.example.net``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.alias.midar import AliasResolution, InferredNode
from repro.util.ipaddr import int_to_ip, ip_to_int


@dataclass
class ITDKSnapshot:
    """One ITDK release: nodes, hostnames, and AS annotations."""

    label: str                                   # e.g. "2020-01"
    resolution: AliasResolution
    hostnames: Dict[int, str] = field(default_factory=dict)
    annotations: Dict[str, int] = field(default_factory=dict)
    method: str = ""                             # rtaa / bdrmapit / ...

    # -- accessors ---------------------------------------------------------

    def nodes(self) -> List[InferredNode]:
        """All inferred routers, by node id."""
        return [self.resolution.nodes[node_id]
                for node_id in sorted(self.resolution.nodes)]

    def hostname(self, address: int) -> Optional[str]:
        """PTR name for ``address``, if one was observed."""
        return self.hostnames.get(address)

    def annotation(self, node_id: str) -> Optional[int]:
        """Inferred operator ASN for a node, if annotated."""
        return self.annotations.get(node_id)

    def annotation_of_address(self, address: int) -> Optional[int]:
        """Inferred operator ASN for the node holding ``address``."""
        node_id = self.resolution.node_of_address.get(address)
        return self.annotations.get(node_id) if node_id else None

    def set_annotations(self, annotations: Dict[str, int],
                        method: str) -> None:
        """Install per-node AS annotations from an inference method."""
        self.annotations = dict(annotations)
        self.method = method

    def named_addresses(self) -> Iterator[Tuple[int, str]]:
        """(address, hostname) pairs, sorted by address."""
        for address in sorted(self.hostnames):
            yield address, self.hostnames[address]

    # -- serialization -------------------------------------------------------

    def nodes_lines(self) -> Iterator[str]:
        """ITDK .nodes format."""
        yield "# ITDK nodes (%s)" % self.label
        for node in self.nodes():
            addresses = " ".join(int_to_ip(a) for a in node.addresses)
            yield "node %s:  %s" % (node.node_id, addresses)

    def node_as_lines(self) -> Iterator[str]:
        """ITDK .nodes.as format."""
        yield "# ITDK node-AS (%s, %s)" % (self.label, self.method)
        for node_id in sorted(self.annotations):
            yield "node.AS %s %d %s" % (node_id,
                                        self.annotations[node_id],
                                        self.method or "unknown")

    def dns_lines(self, timestamp: int = 0) -> Iterator[str]:
        """ITDK .addrs.dns-ish format."""
        yield "# ITDK DNS names (%s)" % self.label
        for address, hostname in self.named_addresses():
            yield "%d\t%s\t%s" % (timestamp, int_to_ip(address), hostname)

    @classmethod
    def from_lines(cls, label: str, nodes_lines: Iterable[str],
                   node_as_lines: Iterable[str],
                   dns_lines: Iterable[str]) -> "ITDKSnapshot":
        """Parse the three text files back into a snapshot.

        Ground-truth fields of the alias resolution are not representable
        in ITDK formats and are left empty.
        """
        resolution = AliasResolution()
        for raw in nodes_lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not line.startswith("node "):
                raise ValueError("malformed nodes line: %r" % raw)
            head, _, rest = line[len("node "):].partition(":")
            node = InferredNode(node_id=head.strip())
            for text in rest.split():
                address = ip_to_int(text)
                node.addresses.append(address)
                resolution.node_of_address[address] = node.node_id
            resolution.nodes[node.node_id] = node

        snapshot = cls(label=label, resolution=resolution)
        for raw in node_as_lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 3 or fields[0] != "node.AS":
                raise ValueError("malformed node.AS line: %r" % raw)
            snapshot.annotations[fields[1]] = int(fields[2])
            if len(fields) > 3:
                snapshot.method = fields[3]

        for raw in dns_lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if len(fields) != 3:
                raise ValueError("malformed dns line: %r" % raw)
            snapshot.hostnames[ip_to_int(fields[1])] = fields[2]
        return snapshot
