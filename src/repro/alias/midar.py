"""MIDAR-style alias resolution simulation.

Real alias resolution sees only a subset of a router's interfaces and
sometimes fails to tie them together.  :func:`resolve_aliases` groups the
observed addresses by ground-truth router and then:

* with probability ``split_rate`` per multi-interface router, partitions
  its observed interfaces into two inferred nodes (false negatives);
* with probability ``merge_rate``, merges two inferred nodes of the same
  AS into one (false positives; rare in practice, default 0).

Destination addresses that answered traceroute but belong to no router
become singleton nodes, as in the real ITDK.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.topology.world import World
from repro.util.rand import substream


@dataclass
class InferredNode:
    """One inferred router (an ITDK "node")."""

    node_id: str
    addresses: List[int] = field(default_factory=list)
    # Ground truth for evaluation: the operating AS(es) of the underlying
    # router(s); more than one only after a bad merge.
    true_asns: Set[int] = field(default_factory=set)

    @property
    def true_asn(self) -> Optional[int]:
        """The unique ground-truth operator, when unambiguous."""
        if len(self.true_asns) == 1:
            return next(iter(self.true_asns))
        return None


@dataclass
class AliasResolution:
    """Mapping between observed addresses and inferred nodes."""

    nodes: Dict[str, InferredNode] = field(default_factory=dict)
    node_of_address: Dict[int, str] = field(default_factory=dict)

    def node_for(self, address: int) -> Optional[InferredNode]:
        """The inferred node holding ``address``, if any."""
        node_id = self.node_of_address.get(address)
        return self.nodes.get(node_id) if node_id is not None else None


def resolve_aliases(world: World, observed: Iterable[int], seed: int,
                    split_rate: float = 0.10,
                    merge_rate: float = 0.0,
                    augment_rate: float = 0.65) -> AliasResolution:
    """Group ``observed`` addresses into inferred routers.

    ``augment_rate`` models MIDAR's active alias probing: for that
    fraction of observed routers, one of the router's *own* addresses
    (a loopback or internal interface) joins the node even though no
    traceroute crossed it -- which is how real ITDK nodes for customer
    border routers come to carry customer-space addresses alongside the
    provider-supplied interconnect address.
    """
    rng = substream(seed, "alias")
    by_router: Dict[str, List[int]] = defaultdict(list)
    orphans: List[int] = []
    for address in sorted(set(observed)):
        iface = world.topology.interfaces_by_address.get(address)
        if iface is None:
            orphans.append(address)
        else:
            by_router[iface.router.rid].append(address)

    if augment_rate > 0:
        router_by_rid = {router.rid: router
                         for router in world.topology.routers}
        for rid in sorted(by_router):
            if rng.random() >= augment_rate:
                continue
            router = router_by_rid[rid]
            known = set(by_router[rid])
            own = [iface.address for iface in router.interfaces
                   if iface.supplier_asn == router.asn
                   and iface.address not in known]
            if own:
                by_router[rid].append(min(own))

    resolution = AliasResolution()
    counter = 0

    def new_node(addresses: List[int], true_asn: Optional[int]) -> None:
        nonlocal counter
        node = InferredNode(node_id="N%d" % counter,
                            addresses=list(addresses))
        if true_asn is not None:
            node.true_asns.add(true_asn)
        counter += 1
        resolution.nodes[node.node_id] = node
        for address in addresses:
            resolution.node_of_address[address] = node.node_id

    for rid in sorted(by_router):
        addresses = by_router[rid]
        true_asn = world.topology.interfaces_by_address[
            addresses[0]].router.asn
        if len(addresses) > 1 and rng.random() < split_rate:
            cut = rng.randint(1, len(addresses) - 1)
            new_node(addresses[:cut], true_asn)
            new_node(addresses[cut:], true_asn)
        else:
            new_node(addresses, true_asn)

    for address in orphans:
        origin = world.origin(address)
        new_node([address], origin if origin > 0 else None)

    if merge_rate > 0:
        _merge_noise(world, resolution, rng, merge_rate)
    return resolution


def _merge_noise(world: World, resolution: AliasResolution, rng,
                 merge_rate: float) -> None:
    """Merge pairs of same-AS nodes to simulate false-positive aliases."""
    by_asn: Dict[int, List[InferredNode]] = defaultdict(list)
    for node in resolution.nodes.values():
        if node.true_asn is not None:
            by_asn[node.true_asn].append(node)
    for asn in sorted(by_asn):
        nodes = by_asn[asn]
        if len(nodes) < 2 or rng.random() >= merge_rate:
            continue
        a, b = rng.sample(nodes, 2)
        if a.node_id == b.node_id or b.node_id not in resolution.nodes:
            continue
        a.addresses.extend(b.addresses)
        a.true_asns.update(b.true_asns)
        for address in b.addresses:
            resolution.node_of_address[address] = a.node_id
        del resolution.nodes[b.node_id]
