"""Alias resolution: grouping observed interfaces into inferred routers.

Stands in for MIDAR/iffinder in ITDK construction.  Resolution starts
from the ground-truth router of each observed interface, then degrades it
with configurable *split* noise (a router's interfaces partitioned into
several inferred nodes -- the dominant real-world error, since alias
resolution is conservative) and optional *merge* noise.
"""

from repro.alias.midar import AliasResolution, InferredNode, resolve_aliases

__all__ = ["AliasResolution", "InferredNode", "resolve_aliases"]
