"""Benchmark-regression harness for the learner.

Measures the learner's hot paths -- cached vs uncached suffix learning,
regex-set evaluation, and serial vs parallel ``Hoiho.run_datasets`` --
and writes the numbers to ``BENCH_learner.json`` so the performance
trajectory is tracked across PRs.  Run it via ``repro-hoiho bench``,
``make bench``, or ``python benchmarks/bench_report.py``.

The workload is synthetic and fixed (no world generation), so the
numbers are comparable run-to-run on one machine; absolute times vary
across machines, the ratios (speedups, hit rates) travel well.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional

from repro.core.evaluate import evaluate_nc
from repro.core.hoiho import Hoiho, HoihoConfig, learn_suffix, \
    learn_suffix_traced
from repro.core.matchcache import MatchCache
from repro.core.parallel import ParallelConfig, default_workers
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset, TrainingItem

#: Schema version of BENCH_learner.json; bump on layout changes.
BENCH_VERSION = 1


def bench_dataset(n_annotated: int = 60, n_plain: int = 20,
                  suffix: str = "example.net") -> SuffixDataset:
    """The microbenchmark suffix: ASN-annotated plus plain hostnames."""
    asns = [1000 + 37 * i for i in range(n_annotated)]
    items = [TrainingItem("as%d-10ge-pop%d.%s" % (asn, i % 7, suffix), asn)
             for i, asn in enumerate(asns)]
    items += [TrainingItem("lo0.cr%d.pop%d.%s" % (i, i % 7, suffix), 1000)
              for i in range(n_plain)]
    return SuffixDataset(suffix, items)


def bench_regex_set(suffix: str = "example.net") -> List[Regex]:
    """A multi-regex convention over :func:`bench_dataset` hostnames."""
    return [
        Regex.raw(r"^as(\d+)-10ge-pop0\.%s$" % suffix.replace(".", r"\.")),
        Regex.raw(r"^as(\d+)-10ge-pop[12]\.%s$" % suffix.replace(".", r"\.")),
        Regex.raw(r"^as(\d+)-[a-z\d]+-[a-z\d]+\.%s$"
                  % suffix.replace(".", r"\.")),
    ]


def bench_world_items(n_suffixes: int = 12,
                      per_suffix: int = 30) -> List[TrainingItem]:
    """A multi-suffix training set for the fan-out benchmark."""
    items: List[TrainingItem] = []
    for index in range(n_suffixes):
        suffix = "op%02d.example.org" % index
        base = 2000 + 101 * index
        for i in range(per_suffix):
            items.append(TrainingItem(
                "as%d-et%d.pop%d.%s" % (base + 13 * i, i % 4, i % 5, suffix),
                base + 13 * i))
        for i in range(per_suffix // 3):
            items.append(TrainingItem("lo0.cr%d.%s" % (i, suffix), base))
    return items


def _best_of(func: Callable[[], object], rounds: int) -> float:
    """Minimum wall time of ``rounds`` calls (best-of timing)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(rounds: int = 5,
              jobs: Optional[int] = None) -> Dict[str, object]:
    """Run the learner benchmark suite and return the report payload."""
    items = [(it.hostname, it.train_asn) for it in bench_dataset().items]

    def fresh_dataset() -> SuffixDataset:
        # Fresh per round so per-dataset memos don't leak across rounds.
        return SuffixDataset("example.net", [
            TrainingItem(hostname, asn) for hostname, asn in items])

    cached_config = HoihoConfig()
    uncached_config = HoihoConfig(enable_cache=False)

    learn_cached = _best_of(
        lambda: learn_suffix(fresh_dataset(), cached_config), rounds)
    learn_uncached = _best_of(
        lambda: learn_suffix(fresh_dataset(), uncached_config), rounds)

    # Cache work counters for one traced learn.
    _, trace = learn_suffix_traced(fresh_dataset(), cached_config)
    stats = trace.cache_stats.as_dict() if trace.cache_stats else {}

    # evaluate_nc on a multi-regex set: cold (fresh engine) vs warm
    # (vector composition from a pre-populated cache).
    regex_set = bench_regex_set()
    eval_dataset = fresh_dataset()
    evaluate_cold = _best_of(
        lambda: evaluate_nc(regex_set, eval_dataset), max(rounds, 20))
    warm_cache = MatchCache(eval_dataset)
    warm_cache.score_nc(regex_set)
    evaluate_warm = _best_of(
        lambda: warm_cache.score_nc(regex_set), max(rounds, 20))

    # Serial vs parallel run_datasets over a multi-suffix world.
    world_items = bench_world_items()
    serial_hoiho = Hoiho()
    run_serial = _best_of(lambda: serial_hoiho.run(world_items),
                          max(1, rounds // 2))
    workers = jobs if jobs and jobs > 1 else default_workers()
    parallel_hoiho = Hoiho(parallel=ParallelConfig(
        workers=workers, backend="process"))
    run_parallel = _best_of(lambda: parallel_hoiho.run(world_items),
                            max(1, rounds // 2))

    return {
        "version": BENCH_VERSION,
        "workload": {
            "suffix_items": len(items),
            "world_items": len(world_items),
            "rounds": rounds,
            "parallel_workers": workers,
        },
        "suffix_learn": {
            "cached_seconds": learn_cached,
            "uncached_seconds": learn_uncached,
            "cache_speedup": learn_uncached / learn_cached
            if learn_cached else 0.0,
        },
        "cache": stats,
        "evaluate_nc": {
            "cold_seconds": evaluate_cold,
            "warm_seconds": evaluate_warm,
            "warm_speedup": evaluate_cold / evaluate_warm
            if evaluate_warm else 0.0,
        },
        "run_datasets": {
            "serial_seconds": run_serial,
            "parallel_seconds": run_parallel,
            "parallel_speedup": run_serial / run_parallel
            if run_parallel else 0.0,
        },
    }


def write_report(path: str = "BENCH_learner.json",
                 rounds: int = 5,
                 jobs: Optional[int] = None) -> Dict[str, object]:
    """Run the suite and write ``path``; returns the payload."""
    report = run_bench(rounds=rounds, jobs=jobs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def render_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a report payload."""
    suffix = report["suffix_learn"]
    cache = report.get("cache", {})
    nc = report["evaluate_nc"]
    run = report["run_datasets"]
    lines = [
        "learner benchmark (v%s)" % report.get("version", "?"),
        "  learn one suffix : cached %.4fs  uncached %.4fs  "
        "speedup %.2fx" % (suffix["cached_seconds"],
                           suffix["uncached_seconds"],
                           suffix["cache_speedup"]),
        "  evaluate_nc set  : cold %.6fs  warm %.6fs  speedup %.1fx"
        % (nc["cold_seconds"], nc["warm_seconds"], nc["warm_speedup"]),
        "  run_datasets     : serial %.3fs  parallel %.3fs  "
        "speedup %.2fx" % (run["serial_seconds"], run["parallel_seconds"],
                           run["parallel_speedup"]),
    ]
    if cache:
        lines.append("  cache counters   : %d vectors built, %d served, "
                     "%d re.match calls, hit rate %.1f%%"
                     % (cache.get("vectors_built", 0),
                        cache.get("vector_hits", 0),
                        cache.get("match_calls", 0),
                        100.0 * cache.get("hit_rate", 0.0)))
    return "\n".join(lines)
