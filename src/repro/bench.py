"""Benchmark-regression harness for the learner, pipeline, and server.

Measures the learner's hot paths -- cached vs uncached suffix learning,
regex-set evaluation, and serial vs parallel ``Hoiho.run_datasets`` --
plus the pipeline kernels added in PR 2 (serial vs parallel timeline
builds, eager vs lazy routing, cold vs warm artifact store) and the
``serve`` kernels added in PR 3 (linear ``HoihoResult.extract`` loop vs
suffix-trie dispatch, cold vs warm service, serial vs parallel bulk
annotation) and the ``obs`` section added in PR 5 (tracer overhead
with tracing disabled and enabled, asserted against the <2% budget)
and the ``incremental`` section added in PR 7 (cold vs warm-repeat vs
perturbed timeline learning through the per-suffix cache)
and writes the numbers to ``BENCH_learner.json`` so the performance
trajectory is tracked across PRs.  Run it via ``repro-hoiho bench``,
``make bench``, or ``python benchmarks/bench_report.py``;
``make bench-pipeline`` / ``make annotate-bench`` / ``make obs-bench``
/ ``make incremental-bench`` refresh only the ``pipeline`` / ``serve``
/ ``obs`` / ``incremental`` sections.

The learner and serving workloads are synthetic and fixed (no world
generation); the pipeline kernels use a TINY world with a restricted
timeline so the suite stays fast.  Absolute times vary across machines,
the ratios (speedups, hit rates) travel well.
"""

from __future__ import annotations

import json
import random
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.core.evaluate import evaluate_nc
from repro.core.hoiho import Hoiho, HoihoConfig, learn_suffix, \
    learn_suffix_traced
from repro.core.matchcache import MatchCache
from repro.core.parallel import ParallelConfig, default_workers
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset, TrainingItem

#: Schema version of BENCH_learner.json; bump on layout changes.
#: v5: serve section gains the ``memo`` (Zipf) kernel and
#: ``fused_plans``; multi-worker sections record the worker count they
#: actually ran with; obs ``enabled.overhead_fraction`` is clamped >= 0
#: with the raw value and a ``noise_floor`` flag alongside.
#: v6: new ``incremental`` section -- cold vs warm-repeat vs
#: 5%-perturbed timeline learning through the per-suffix cache, with
#: ``suffix_cache`` hit/miss counters and ``parallel_workers``.
#: v7: new ``http`` section -- network serving over
#: ``repro.serve.http`` measured by the open/closed-loop load
#: generator (throughput, p50/p90/p99 latency, Zipf workload
#: fingerprint shared with the in-process serve kernels).
#: v8: new ``shadow`` section -- dual-annotation (ShadowService)
#: overhead vs a single set on the Zipf workload, asserted under
#: ``SHADOW_OVERHEAD_BUDGET``, plus the per-suffix disagreement ledger
#: checked exact on a constructed divergent world.
#: v9: new ``obs_window`` section -- time-windowed telemetry cost on
#: the serving hot path: the per-request access-log line and the
#: per-flush-interval rolling-window fold, each expressed as a
#: fraction of what a request (resp. a busy second) costs, summed and
#: asserted under ``OBS_WINDOW_OVERHEAD_BUDGET``.
BENCH_VERSION = 9

#: The tracing-disabled overhead the instrumentation must stay under.
OBS_OVERHEAD_BUDGET = 0.02

#: Windowed-telemetry ceiling: the access-log line per request plus
#: the rolling-window fold per flush interval must cost under this
#: fraction of the serving hot path.
OBS_WINDOW_OVERHEAD_BUDGET = 0.03

#: Dual-annotation cost ceiling: shadow-mode ``annotate_batch`` on the
#: Zipf workload must stay within this multiple of a single set's cost
#: (two memo lookups plus the ledger fold, so ~2x is the floor).
SHADOW_OVERHEAD_BUDGET = 2.2

#: ITDK labels the pipeline kernels build (restricted for speed).
PIPELINE_BENCH_LABELS = ["2017-08", "2018-03", "2019-01", "2020-01"]


def bench_dataset(n_annotated: int = 60, n_plain: int = 20,
                  suffix: str = "example.net") -> SuffixDataset:
    """The microbenchmark suffix: ASN-annotated plus plain hostnames."""
    asns = [1000 + 37 * i for i in range(n_annotated)]
    items = [TrainingItem("as%d-10ge-pop%d.%s" % (asn, i % 7, suffix), asn)
             for i, asn in enumerate(asns)]
    items += [TrainingItem("lo0.cr%d.pop%d.%s" % (i, i % 7, suffix), 1000)
              for i in range(n_plain)]
    return SuffixDataset(suffix, items)


def bench_regex_set(suffix: str = "example.net") -> List[Regex]:
    """A multi-regex convention over :func:`bench_dataset` hostnames."""
    return [
        Regex.raw(r"^as(\d+)-10ge-pop0\.%s$" % suffix.replace(".", r"\.")),
        Regex.raw(r"^as(\d+)-10ge-pop[12]\.%s$" % suffix.replace(".", r"\.")),
        Regex.raw(r"^as(\d+)-[a-z\d]+-[a-z\d]+\.%s$"
                  % suffix.replace(".", r"\.")),
    ]


def bench_world_items(n_suffixes: int = 24,
                      per_suffix: int = 90) -> List[TrainingItem]:
    """A multi-suffix training set for the fan-out benchmark."""
    items: List[TrainingItem] = []
    for index in range(n_suffixes):
        suffix = "op%02d.example.org" % index
        base = 2000 + 101 * index
        for i in range(per_suffix):
            items.append(TrainingItem(
                "as%d-et%d.pop%d.%s" % (base + 13 * i, i % 4, i % 5, suffix),
                base + 13 * i))
        for i in range(per_suffix // 3):
            items.append(TrainingItem("lo0.cr%d.%s" % (i, suffix), base))
    return items


def _best_of(func: Callable[[], object], rounds: int) -> float:
    """Minimum wall time of ``rounds`` calls (best-of timing)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bulk_workers(jobs: Optional[int] = None) -> int:
    """Worker count for the multi-worker bench sections.

    An explicit ``--jobs`` wins; otherwise ``min(4, cpu_count)`` --
    enough to demonstrate scaling without turning the bench into a
    machine-sizing exercise.  Whatever this returns is what the section
    records as ``parallel_workers`` (the count actually used, not the
    machine's capacity).
    """
    if jobs and jobs > 1:
        return jobs
    return min(4, default_workers())


def run_bench(rounds: int = 5,
              jobs: Optional[int] = None) -> Dict[str, object]:
    """Run the learner benchmark suite and return the report payload."""
    items = [(it.hostname, it.train_asn) for it in bench_dataset().items]

    def fresh_dataset() -> SuffixDataset:
        # Fresh per round so per-dataset memos don't leak across rounds.
        return SuffixDataset("example.net", [
            TrainingItem(hostname, asn) for hostname, asn in items])

    cached_config = HoihoConfig()
    uncached_config = HoihoConfig(enable_cache=False)

    learn_cached = _best_of(
        lambda: learn_suffix(fresh_dataset(), cached_config), rounds)
    learn_uncached = _best_of(
        lambda: learn_suffix(fresh_dataset(), uncached_config), rounds)

    # Cache work counters for one traced learn.
    _, trace = learn_suffix_traced(fresh_dataset(), cached_config)
    stats = trace.cache_stats.as_dict() if trace.cache_stats else {}

    # evaluate_nc on a multi-regex set: cold (fresh engine) vs warm
    # (vector composition from a pre-populated cache).
    regex_set = bench_regex_set()
    eval_dataset = fresh_dataset()
    evaluate_cold = _best_of(
        lambda: evaluate_nc(regex_set, eval_dataset), max(rounds, 20))
    warm_cache = MatchCache(eval_dataset)
    warm_cache.score_nc(regex_set)
    evaluate_warm = _best_of(
        lambda: warm_cache.score_nc(regex_set), max(rounds, 20))

    # Serial vs parallel run_datasets over a multi-suffix world.
    world_items = bench_world_items()
    serial_hoiho = Hoiho()
    run_serial = _best_of(lambda: serial_hoiho.run(world_items),
                          max(1, rounds // 2))
    workers = jobs if jobs and jobs > 1 else default_workers()
    parallel_hoiho = Hoiho(parallel=ParallelConfig(
        workers=workers, backend="process"))
    run_parallel = _best_of(lambda: parallel_hoiho.run(world_items),
                            max(1, rounds // 2))

    return {
        "version": BENCH_VERSION,
        "workload": {
            "suffix_items": len(items),
            "world_items": len(world_items),
            "world_suffixes": 24,
            "rounds": rounds,
            "parallel_workers": workers,
        },
        "suffix_learn": {
            "cached_seconds": learn_cached,
            "uncached_seconds": learn_uncached,
            "cache_speedup": learn_uncached / learn_cached
            if learn_cached else 0.0,
        },
        "cache": stats,
        "evaluate_nc": {
            "cold_seconds": evaluate_cold,
            "warm_seconds": evaluate_warm,
            "warm_speedup": evaluate_cold / evaluate_warm
            if evaluate_warm else 0.0,
        },
        "run_datasets": {
            "serial_seconds": run_serial,
            "parallel_seconds": run_parallel,
            "parallel_speedup": run_serial / run_parallel
            if run_parallel else 0.0,
        },
    }


def run_pipeline_bench(rounds: int = 2,
                       jobs: Optional[int] = None) -> Dict[str, object]:
    """Run the pipeline kernels and return the ``pipeline`` section.

    Three kernels, matching the three pieces of the PR-2 pipeline
    layer: serial vs parallel :func:`build_timeline` fan-out, eager vs
    lazy :class:`RoutingModel` construction, and cold vs warm artifact
    store round-trips of the world + timeline.
    """
    # Imported here so the learner-only suite stays import-light.
    from repro.eval.context import ExperimentContext, Scale
    from repro.eval.timeline import build_timeline
    from repro.store import ArtifactStore
    from repro.topology.world import WorldConfig, generate_world
    from repro.traceroute.routing import RoutingModel

    seed = 2020
    labels = list(PIPELINE_BENCH_LABELS)
    world = generate_world(seed, WorldConfig.tiny())
    workers = bulk_workers(jobs)

    # Kernel 1: timeline fan-out, one worker task per snapshot.
    timeline_serial = _best_of(
        lambda: build_timeline(world, seed, itdk_labels=labels), rounds)
    parallel_config = ParallelConfig(workers=workers, backend="process",
                                     chunk_size=1)
    timeline_parallel = _best_of(
        lambda: build_timeline(world, seed, itdk_labels=labels,
                               parallel=parallel_config), rounds)

    # Kernel 2: routing construction, eager (all destinations) vs lazy
    # (first queried destination only).
    graph = generate_world(seed, WorldConfig.small()).graph
    asns = graph.asns()
    src, dst = asns[0], asns[-1]
    routing_eager = _best_of(
        lambda: RoutingModel(graph, eager=True), max(rounds, 3))
    routing_lazy = _best_of(
        lambda: RoutingModel(graph).as_path(src, dst), max(rounds, 3))

    # Kernel 3: artifact store, cold (generate + persist) vs warm
    # (served straight from disk).
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = ArtifactStore(tmp)

        def _timeline_with_store() -> None:
            context = ExperimentContext(seed=seed, scale=Scale.TINY,
                                        itdk_labels=labels, store=store)
            context.timeline

        start = time.perf_counter()
        _timeline_with_store()
        store_cold = time.perf_counter() - start
        store_warm = _best_of(_timeline_with_store, max(rounds, 3))

    return {
        "workload": {
            "itdk_labels": len(labels),
            "training_sets": len(labels) + 2,
            "scale": "tiny",
            "routing_ases": len(asns),
            "rounds": rounds,
            "parallel_workers": workers,
        },
        "timeline": {
            "serial_seconds": timeline_serial,
            "parallel_seconds": timeline_parallel,
            "parallel_speedup": timeline_serial / timeline_parallel
            if timeline_parallel else 0.0,
            "parallel_workers": workers,
        },
        "routing": {
            "eager_seconds": routing_eager,
            "lazy_first_path_seconds": routing_lazy,
            "lazy_speedup": routing_eager / routing_lazy
            if routing_lazy else 0.0,
        },
        "store": {
            "cold_seconds": store_cold,
            "warm_seconds": store_warm,
            "warm_speedup": store_cold / store_warm
            if store_warm else 0.0,
        },
    }


def serve_conventions(n_suffixes: int = 24) -> "HoihoResult":
    """A hand-built convention set over true registered domains.

    The suffixes must be registered domains under the embedded PSL
    (``svcNN-bench.org`` is: public suffix ``org`` + one label) so the
    old linear path (``HoihoResult.extract`` via the PSL) and the
    trie-dispatch path annotate identically -- the throughput
    comparison is apples to apples.
    """
    from repro.core.evaluate import NCScore
    from repro.core.hoiho import HoihoResult
    from repro.core.select import LearnedConvention, NCClass

    result = HoihoResult(suffixes_examined=n_suffixes)
    for index in range(n_suffixes):
        suffix = "svc%02d-bench.org" % index
        escaped = suffix.replace(".", r"\.")
        regexes = (
            Regex.raw(r"^as(\d+)-et\d+\.pop\d+\.%s$" % escaped),
            Regex.raw(r"^(\d+)\.cr\d+\.%s$" % escaped),
        )
        score = NCScore(tp=6, matches=6)
        score.distinct_asns = {1000 + index, 2000 + index, 3000 + index}
        result.conventions[suffix] = LearnedConvention(
            suffix=suffix, regexes=regexes, score=score,
            nc_class=NCClass.GOOD)
    return result


def serve_hostnames(n: int = 20000, n_suffixes: int = 24) -> List[str]:
    """The bulk-annotation workload over :func:`serve_conventions`.

    A realistic mix: mostly convention hits, plus known-suffix misses,
    unknown suffixes, and un-normalised forms (trailing dots,
    uppercase).
    """
    hostnames: List[str] = []
    for i in range(n):
        suffix = "svc%02d-bench.org" % (i % n_suffixes)
        bucket = i % 10
        if bucket < 6:          # primary convention hit
            hostnames.append("as%d-et%d.pop%d.%s"
                             % (1000 + 7 * i, i % 4, i % 5, suffix))
        elif bucket < 7:        # secondary regex hit
            hostnames.append("%d.cr%d.%s" % (2000 + 3 * i, i % 9, suffix))
        elif bucket < 8:        # known suffix, no pattern match
            hostnames.append("lo0.cr%d.%s" % (i % 9, suffix))
        elif bucket < 9:        # unknown suffix
            hostnames.append("as%d.pop%d.unknown%02d.net"
                             % (1000 + i, i % 5, i % 16))
        else:                   # needs normalisation first
            hostnames.append("AS%d-ET%d.POP%d.%s."
                             % (1000 + 7 * i, i % 4, i % 5,
                                suffix.upper()))
    return hostnames


def zipf_hostnames(n: int = 20000, universe: int = 3000,
                   exponent: float = 1.1,
                   seed: int = 20200817) -> List[str]:
    """A Zipf-skewed resample of the serve workload.

    Production PTR streams are rank-frequency skewed: a small set of
    router interfaces dominates any snapshot's traffic.  This draws
    ``n`` hostnames from a ``universe``-name head with weight
    ``1/(rank+1)**exponent`` -- deterministic via the fixed ``seed`` --
    which is the workload the memoized hot path is designed for (and
    the one the v5 throughput floor is asserted on).
    """
    base = serve_hostnames(universe)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(base))]
    return random.Random(seed).choices(base, weights=weights, k=n)


def _serve_dispatch_kernels(result: "HoihoResult", hostnames: List[str],
                            zipf: List[str],
                            rounds: int) -> Dict[str, object]:
    """The single-core serve kernels: linear apply, fused trie
    dispatch (memo off, so the number isolates dispatch itself), and
    the memoized Zipf hot path."""
    from repro.serve.service import AnnotationService

    count = len(hostnames)

    # Kernel 1: the pre-serve apply loop -- PSL scan per hostname.
    linear_seconds = _best_of(
        lambda: [result.extract(h) for h in hostnames], rounds)

    # Kernel 2a: cold dispatch -- build + warm the index, then a full
    # batch (what one `repro-hoiho annotate` invocation pays).
    def dispatch_cold() -> None:
        service = AnnotationService(result, memo_size=0)
        service.warm()
        service.annotate_batch(hostnames)

    cold_seconds = _best_of(dispatch_cold, rounds)

    # Kernel 2b: warm dispatch -- the steady-state uncached rate of
    # the fused-regex trie (memo off: the mixed workload is nearly
    # duplicate-free, so this isolates dispatch).
    warm_service = AnnotationService(result, memo_size=0)
    warm_service.warm()
    warm_seconds = _best_of(
        lambda: warm_service.annotate_batch(hostnames), rounds)

    # Kernel 3: the memoized hot path on the Zipf workload -- what a
    # steady-state service actually sees -- against the same workload
    # with the memo disabled.
    zipf_count = len(zipf)
    uncached_service = AnnotationService(result, memo_size=0)
    uncached_service.warm()
    memo_uncached = _best_of(
        lambda: uncached_service.annotate_batch(zipf), rounds)
    memo_service = AnnotationService(result)
    memo_service.warm()
    memo_service.annotate_batch(zipf)      # fill the memo once
    memo_warm = _best_of(
        lambda: memo_service.annotate_batch(zipf), rounds)
    memo_stats = memo_service.memo.stats()

    return {
        "linear_apply": {
            "seconds": linear_seconds,
            "hostnames_per_second": count / linear_seconds
            if linear_seconds else 0.0,
        },
        "dispatch": {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_hostnames_per_second": count / warm_seconds
            if warm_seconds else 0.0,
            "speedup_vs_linear": linear_seconds / warm_seconds
            if warm_seconds else 0.0,
            "fused_plans": warm_service.index.fused_plans(),
        },
        "memo": {
            "zipf_hostnames": zipf_count,
            "zipf_universe": len(set(zipf)),
            "uncached_seconds": memo_uncached,
            "warm_seconds": memo_warm,
            "warm_hostnames_per_second": zipf_count / memo_warm
            if memo_warm else 0.0,
            "memo_speedup": memo_uncached / memo_warm
            if memo_warm else 0.0,
            "hit_rate": memo_stats["hit_rate"],
            "capacity": memo_stats["capacity"],
        },
    }


def run_dispatch_bench(rounds: int = 3,
                       jobs: Optional[int] = None) -> Dict[str, object]:
    """The single-core serve kernels only (no process fan-out): the
    quick iteration loop behind ``make dispatch-bench`` and
    ``bench_report --dispatch-only``.  ``jobs`` is accepted for CLI
    symmetry but unused -- nothing here fans out."""
    del jobs
    result = serve_conventions()
    hostnames = serve_hostnames()
    zipf = zipf_hostnames()
    section: Dict[str, object] = {
        "workload": {
            "conventions": len(result.conventions),
            "hostnames": len(hostnames),
            "zipf_hostnames": len(zipf),
            "rounds": rounds,
        },
    }
    section.update(_serve_dispatch_kernels(result, hostnames, zipf,
                                           rounds))
    return section


def run_serve_bench(rounds: int = 3,
                    jobs: Optional[int] = None) -> Dict[str, object]:
    """Run the annotation-serving kernels; returns the ``serve`` section.

    Five kernels, matching the layers of the serving subsystem: the old
    linear apply loop (per-hostname ``HoihoResult.extract`` through the
    PSL), cold vs warm fused-regex trie dispatch
    (:class:`~repro.serve.service.AnnotationService`, memo off), the
    memoized Zipf hot path (memo on -- the steady-state number), and
    serial vs parallel :class:`~repro.serve.engine.BulkAnnotator`
    streaming with ``min(4, cpu_count)`` workers.
    """
    from repro.serve.engine import BulkAnnotator
    from repro.serve.service import AnnotationService

    result = serve_conventions()
    hostnames = serve_hostnames()
    zipf = zipf_hostnames()
    workers = bulk_workers(jobs)

    section: Dict[str, object] = {
        "workload": {
            "conventions": len(result.conventions),
            "hostnames": len(hostnames),
            "zipf_hostnames": len(zipf),
            "rounds": rounds,
            "parallel_workers": workers,
        },
    }
    section.update(_serve_dispatch_kernels(result, hostnames, zipf,
                                           rounds))

    # Kernel 4: bulk streaming, serial vs parallel chunk fan-out
    # (adaptive chunking, packed payloads, fork-shared index).
    serial_annotator = BulkAnnotator(AnnotationService(result))
    bulk_serial = _best_of(
        lambda: sum(1 for _ in serial_annotator.annotate(hostnames)),
        rounds)
    parallel_annotator = BulkAnnotator(
        AnnotationService(result),
        parallel=ParallelConfig(workers=workers, backend="process"))
    bulk_parallel = _best_of(
        lambda: sum(1 for _ in parallel_annotator.annotate(hostnames)),
        rounds)
    section["bulk"] = {
        "serial_seconds": bulk_serial,
        "parallel_seconds": bulk_parallel,
        "parallel_speedup": bulk_serial / bulk_parallel
        if bulk_parallel else 0.0,
        "parallel_workers": workers,
    }
    return section


def run_http_bench(single_requests: int = 600,
                   batch_requests: int = 40,
                   batch_size: int = 500,
                   open_requests: int = 400,
                   open_rate: float = 200.0,
                   concurrency: int = 4,
                   workers: int = 2) -> Dict[str, object]:
    """Measure :mod:`repro.serve.http` end to end; the ``http`` section.

    Boots a real pre-fork server (:class:`~repro.serve.http.ServerProcess`,
    ``workers`` processes sharing one warmed index) on an ephemeral
    port and drives it with :func:`~repro.serve.loadgen.run_loadgen`
    over the same deterministic Zipf stream the in-process serve
    kernels use -- the recorded ``workload_fingerprint`` proves it.
    Three measurements:

    * ``closed_single`` -- capacity on ``POST /annotate``,
      ``concurrency`` keep-alive connections;
    * ``closed_batch`` -- capacity on ``POST /annotate/batch`` with
      ``batch_size`` hostnames per request (the bulk-consumer shape);
    * ``open`` -- latency at a fixed offered rate, queueing delay
      included (coordinated-omission corrected).

    The server is then SIGTERM-drained; ``drain_exit_code`` records
    that the graceful path actually exits 0 under measurement load.
    """
    from repro.core.io import conventions_to_json
    from repro.serve.http import HttpConfig, ServerProcess
    from repro.serve.loadgen import (LoadGenConfig, run_loadgen,
                                     workload_fingerprint)

    conventions_json = conventions_to_json(serve_conventions())
    zipf = zipf_hostnames()
    config = HttpConfig(port=0, workers=workers)
    section: Dict[str, object] = {
        "workload": {
            "zipf_hostnames": len(zipf),
            "workload_fingerprint": workload_fingerprint(zipf),
            "workers": workers,
            "concurrency": concurrency,
        },
    }
    server = ServerProcess(conventions_json, config).start()
    try:
        section["closed_single"] = run_loadgen(
            LoadGenConfig(host=server.host, port=server.port,
                          mode="closed", requests=single_requests,
                          concurrency=concurrency), zipf)
        section["closed_batch"] = run_loadgen(
            LoadGenConfig(host=server.host, port=server.port,
                          mode="closed", requests=batch_requests,
                          concurrency=max(2, concurrency // 2),
                          batch_size=batch_size), zipf)
        section["open"] = run_loadgen(
            LoadGenConfig(host=server.host, port=server.port,
                          mode="open", requests=open_requests,
                          concurrency=concurrency, rate=open_rate), zipf)
    finally:
        section["drain_exit_code"] = server.stop()
    return section


def shadow_divergence_case(n: int = 2000):
    """A constructed divergent world with *known* per-class counts.

    Starts from two identical :func:`serve_conventions` sets, then
    introduces one divergence of each class:

    * ``svc07-bench.org`` is dropped from the candidate
      (``primary_only``);
    * ``extra-bench.org`` exists only in the candidate
      (``candidate_only``);
    * ``confl-bench.org`` exists in both, but the primary's regex
      captures the first number of ``asA-B.cr*`` names and the
      candidate's the second (``conflict`` on every hit).

    The hostname stream cycles a fixed 10-slot pattern -- 4 agreeing
    hits, 2 agreeing misses, 1 of each one-sided class, 2 conflicts --
    so for ``n`` divisible by 10 the expected ledger is exactly::

        agree = 6n/10   primary_only = n/10
        candidate_only = n/10   conflict = 2n/10

    Returns ``(primary, candidate, hostnames, expected)`` where
    ``expected`` maps divergence class to its exact count.  The bench
    (and CI) assert the observed ledger equals it.
    """
    from repro.core.evaluate import NCScore
    from repro.core.select import LearnedConvention, NCClass

    if n % 10:
        raise ValueError("n must be divisible by 10, got %d" % n)

    def _convention(suffix: str, pattern: str) -> LearnedConvention:
        score = NCScore(tp=6, matches=6)
        score.distinct_asns = {101, 202, 303}
        return LearnedConvention(suffix=suffix,
                                 regexes=(Regex.raw(pattern),),
                                 score=score, nc_class=NCClass.GOOD)

    primary = serve_conventions(n_suffixes=8)
    candidate = serve_conventions(n_suffixes=8)
    del candidate.conventions["svc07-bench.org"]
    candidate.conventions["extra-bench.org"] = _convention(
        "extra-bench.org", r"^as(\d+)\.pop\d+\.extra\-bench\.org$")
    primary.conventions["confl-bench.org"] = _convention(
        "confl-bench.org", r"^as(\d+)-\d+\.cr\d+\.confl\-bench\.org$")
    candidate.conventions["confl-bench.org"] = _convention(
        "confl-bench.org", r"^as\d+-(\d+)\.cr\d+\.confl\-bench\.org$")

    hostnames: List[str] = []
    for i in range(n):
        slot = i % 10
        if slot < 4:            # agree: identical convention, same ASN
            hostnames.append("as%d-et%d.pop%d.svc%02d-bench.org"
                             % (1000 + 7 * i, i % 4, i % 5, slot))
        elif slot < 6:          # agree: neither side knows the suffix
            hostnames.append("host%d.unknown%02d.net" % (i, i % 16))
        elif slot < 7:          # primary_only: dropped from candidate
            hostnames.append("as%d-et%d.pop%d.svc07-bench.org"
                             % (1000 + 7 * i, i % 4, i % 5))
        elif slot < 8:          # candidate_only: added in candidate
            hostnames.append("as%d.pop%d.extra-bench.org"
                             % (1000 + 7 * i, i % 5))
        else:                   # conflict: different capture groups
            hostnames.append("as%d-%d.cr%d.confl-bench.org"
                             % (1000 + i, 5000 + i, i % 9))
    expected = {
        "agree": 6 * n // 10,
        "primary_only": n // 10,
        "candidate_only": n // 10,
        "conflict": 2 * n // 10,
    }
    return primary, candidate, hostnames, expected


def run_shadow_bench(rounds: int = 5) -> Dict[str, object]:
    """Measure shadow deployment; returns the ``shadow`` section.

    Two halves:

    * ``overhead`` -- memo-warm ``annotate_batch`` over the Zipf
      workload, a plain :class:`~repro.serve.service.AnnotationService`
      vs a :class:`~repro.serve.shadow.ShadowService` carrying an
      identical candidate (each side its own memo).  The dual/single
      ratio is the cost of shadowing a request stream, asserted under
      :data:`SHADOW_OVERHEAD_BUDGET`.
    * ``ledger`` -- the per-suffix disagreement ledger run over
      :func:`shadow_divergence_case`, with the observed class counts
      compared to the constructed ground truth (``exact``), and the
      shadow-mode primary results compared byte-for-byte to a plain
      primary service (``primary_identical``).
    """
    from repro.serve.loadgen import workload_fingerprint
    from repro.serve.service import AnnotationService
    from repro.serve.shadow import (DIVERGENCE_CLASSES, CLASS_AGREE,
                                    ShadowService)

    result = serve_conventions()
    zipf = zipf_hostnames()

    plain = AnnotationService(result)
    plain.warm()
    shadow = ShadowService(AnnotationService(result))
    shadow.load_candidate(result)  # identical candidate: pure overhead
    shadow.warm()
    plain.annotate_batch(zipf)   # fill both sides' memos before timing
    shadow.annotate_batch(zipf)
    single_seconds = _best_of(lambda: plain.annotate_batch(zipf), rounds)
    dual_seconds = _best_of(lambda: shadow.annotate_batch(zipf), rounds)
    ratio = dual_seconds / single_seconds if single_seconds else 0.0

    primary, candidate, hostnames, expected = shadow_divergence_case()
    ledger_service = ShadowService(AnnotationService(primary))
    ledger_service.load_candidate(candidate)
    ledger_service.warm()
    shadow_asns = ledger_service.annotate_batch(hostnames)
    oracle = AnnotationService(primary)
    oracle.warm()
    report = ledger_service.report()
    observed = {cls: report[cls]
                for cls in (CLASS_AGREE,) + DIVERGENCE_CLASSES}

    return {
        "workload": {
            "conventions": len(result.conventions),
            "zipf_hostnames": len(zipf),
            "rounds": rounds,
            "workload_fingerprint": workload_fingerprint(zipf),
        },
        "overhead": {
            "single_seconds": single_seconds,
            "dual_seconds": dual_seconds,
            "overhead_ratio": ratio,
            "budget_ratio": SHADOW_OVERHEAD_BUDGET,
            "within_budget": ratio <= SHADOW_OVERHEAD_BUDGET,
            "dual_hostnames_per_second":
                len(zipf) / dual_seconds if dual_seconds else 0.0,
        },
        "ledger": {
            "hostnames": len(hostnames),
            "expected": expected,
            "observed": observed,
            "exact": observed == expected,
            "primary_identical":
                shadow_asns == oracle.annotate_batch(hostnames),
            "disagreement_fraction": report["disagreement_fraction"],
        },
    }


def run_obs_window_bench(rounds: int = 3) -> Dict[str, object]:
    """Measure windowed-telemetry cost; returns the ``obs_window``
    section.

    The telemetry added with the time axis touches the serving hot
    path in two places, each measured on its own and expressed as a
    fraction of the work it rides on:

    * the **access log** charges each request one buffered
      :meth:`~repro.obs.logjson.JsonLogger.log` enqueue, so its cost
      is that amortised call over the end-to-end cost of one
      keep-alive ``/annotate`` request against an in-thread server
      (access log *off*, so the request time is the clean baseline).
      The drainer's deferred encode+write is *reported* per line but
      not budgeted: like the metrics flush loop it runs off the
      request path (in a live server it overlaps the socket waits),
      which is exactly why the access log buffers.  The synchronous
      per-line cost is reported too -- the price the buffer keeps off
      the hot path;
    * the **rolling-window fold** runs once per ``flush_interval`` (a
      fixed per-second cost independent of traffic), so its cost is
      one :meth:`~repro.obs.timeseries.RollingWindows.record` of a
      busy snapshot over the interval it amortises across.

    Both fractions are computed rather than differenced -- like the
    ``obs`` section's disabled overhead, the true cost sits far below
    run-to-run noise of a full load run, while the per-line and
    per-fold costs themselves measure cleanly.  ``within_budget``
    asserts the sum stays under :data:`OBS_WINDOW_OVERHEAD_BUDGET`.
    """
    import os
    import threading
    from http.client import HTTPConnection

    from repro.obs.logjson import JsonLogger
    from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, MetricsRegistry
    from repro.obs.timeseries import RollingWindows
    from repro.serve.http import AnnotationHTTPServer, HttpConfig, \
        create_listener
    from repro.serve.service import AnnotationService

    rounds = max(rounds, 3)
    result = serve_conventions()
    service = AnnotationService(result)
    service.warm()

    # -- per-request baseline: keep-alive burst, no access log -------
    n_requests = 300
    hostnames = zipf_hostnames(n=n_requests)
    config = HttpConfig(port=0)
    sock = create_listener(config.host, 0)
    server = AnnotationHTTPServer(service, config, sock=sock)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01},
                              daemon=True)
    thread.start()
    try:
        conn = HTTPConnection("127.0.0.1", server.server_port,
                              timeout=30)
        bodies = [json.dumps({"hostname": hostname}).encode("utf-8")
                  for hostname in hostnames]

        def burst() -> None:
            for body in bodies:
                conn.request("POST", "/annotate", body=body)
                conn.getresponse().read()

        burst()  # warm the memo and the connection before timing
        request_seconds = _best_of(burst, rounds) / n_requests
        conn.close()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(5)

    # -- access-log line cost ----------------------------------------
    # Three numbers: the buffered enqueue the request thread actually
    # pays (budgeted), the deferred per-line encode+write the drainer
    # pays later (reported), and what a synchronous line would have
    # cost (reported; the price the buffer keeps off the hot path).
    # The enqueue is measured with the drainer parked (huge batch
    # threshold and period) so the number is the uncontended hot-path
    # cost, then one timed flush() drains everything for the deferred
    # cost.
    log_lines = 20000
    total_lines = rounds * log_lines
    with tempfile.TemporaryDirectory() as tmpdir:

        def burst_lines(logger) -> None:
            for _ in range(log_lines):
                logger.log("access", method="POST", path="/annotate",
                           status=200, bytes=64,
                           latency_seconds=0.000731,
                           request_id="deadbeefcafe0123")

        buffered = JsonLogger(path=os.path.join(tmpdir, "buf.jsonl"),
                              worker_id=0, buffered=True,
                              flush_seconds=3600.0,
                              buffer_records=total_lines + 1,
                              drain_batch=total_lines + 1)
        line_seconds = _best_of(lambda: burst_lines(buffered),
                                rounds) / log_lines
        start = time.perf_counter()
        buffered.flush()
        drain_line_seconds = ((time.perf_counter() - start)
                              / total_lines)
        buffered.close()
        sync = JsonLogger(path=os.path.join(tmpdir, "sync.jsonl"),
                          worker_id=0)
        sync_line_seconds = _best_of(lambda: burst_lines(sync),
                                     rounds) / log_lines
        sync.close()

    # -- rolling-window fold cost ------------------------------------
    # Pre-build a run of snapshots that advance the way a busy worker's
    # do (counters and latency buckets all moving), so every record()
    # pays for a real diff + merge, not an empty delta.
    window_records = 200
    registry = MetricsRegistry()
    snapshots = []
    for index in range(window_records + 1):
        registry.counter("http_requests").inc(50)
        registry.labelled("http_responses").inc("200", 49)
        registry.labelled("http_responses").inc("500", 1)
        histogram = registry.histogram("http_request_seconds",
                                       DEFAULT_LATENCY_BOUNDS)
        for i in range(50):
            histogram.observe(0.0005 * ((index + i) % 40 + 1))
        snapshots.append(registry.snapshot())

    def fold() -> None:
        windows = RollingWindows(config.window_seconds,
                                 config.window_count)
        for index, snapshot in enumerate(snapshots):
            windows.record(snapshot, ts=1000.0 + index)

    record_seconds = _best_of(fold, rounds) / len(snapshots)

    access_fraction = (line_seconds / request_seconds
                       if request_seconds else 0.0)
    window_fraction = record_seconds / config.flush_interval
    overhead = access_fraction + window_fraction
    return {
        "workload": {
            "http_requests": n_requests,
            "log_lines": log_lines,
            "window_records": len(snapshots),
            "rounds": rounds,
            "flush_interval_seconds": config.flush_interval,
            "window_seconds": config.window_seconds,
            "window_count": config.window_count,
        },
        "request_seconds": request_seconds,
        "access_log": {
            "line_seconds": line_seconds,
            "drain_line_seconds": drain_line_seconds,
            "sync_line_seconds": sync_line_seconds,
            "fraction_of_request": access_fraction,
        },
        "window": {
            "record_seconds": record_seconds,
            "fraction_per_second": window_fraction,
        },
        "overhead_fraction": overhead,
        "budget_fraction": OBS_WINDOW_OVERHEAD_BUDGET,
        "within_budget": overhead <= OBS_WINDOW_OVERHEAD_BUDGET,
    }


def incremental_training_sets(n_suffixes: int = 24,
                              per_suffix: int = 40,
                              perturb_fraction: float = 0.05):
    """Two synthetic snapshots for the incremental-learning kernels.

    ``snap0`` is the baseline; ``snap1`` mutates ~``perturb_fraction``
    of its suffixes (their base ASN shifts, so every hostname and
    training ASN in those suffixes changes) and leaves the rest
    byte-identical -- the cross-snapshot shape the delta planner is
    built for.  Suffixes are registered domains (``incNN-bench.org``)
    so each one really is its own dataset under the embedded PSL.

    Returns ``(snap0, snap1, n_mutated)``.
    """
    from repro.eval.timeline import TrainingSet

    n_mutated = max(1, round(n_suffixes * perturb_fraction))
    mutated = set(range(n_mutated))

    def snapshot(label: str, mutate: bool) -> "TrainingSet":
        items: List[TrainingItem] = []
        for index in range(n_suffixes):
            suffix = "inc%02d-bench.org" % index
            base = 3000 + 101 * index
            if mutate and index in mutated:
                base += 17
            for i in range(per_suffix):
                items.append(TrainingItem(
                    "as%d-et%d.pop%d.%s" % (base + 13 * i, i % 4, i % 5,
                                            suffix),
                    base + 13 * i))
            for i in range(per_suffix // 4):
                items.append(TrainingItem("lo0.cr%d.%s" % (i, suffix),
                                          base))
        return TrainingSet(label=label, kind="itdk", method="rtaa",
                           year=2020.0, items=items)

    return snapshot("snap0", False), snapshot("snap1", True), n_mutated


def run_incremental_bench(rounds: int = 2,
                          jobs: Optional[int] = None) -> Dict[str, object]:
    """The incremental-learning kernels; returns the ``incremental``
    section.

    Three timings over a two-snapshot synthetic timeline: a **cold**
    ``learn_timeline`` against an empty store, a **warm repeat** of the
    identical run (served by the layered whole-result cache), and a
    **perturbed** snapshot -- ~5% of suffixes mutated, arriving under a
    new label -- measured both from scratch (no store) and
    incrementally (warm store: only changed suffixes relearn).
    ``identical`` asserts the incremental results are byte-identical
    (conventions JSON) to the from-scratch ones.
    """
    from repro.core.io import conventions_to_json
    from repro.eval.context import ExperimentContext, Scale
    from repro.store import ArtifactStore

    snap0, snap1, n_mutated = incremental_training_sets()
    workers = bulk_workers(jobs)
    parallel = ParallelConfig(workers=workers, backend="process")

    def context(store, training_set):
        ctx = ExperimentContext(seed=2020, scale=Scale.TINY,
                                parallel=parallel, store=store)
        # The synthetic snapshots stand in for the generated timeline.
        ctx._timeline = [training_set]
        return ctx

    cold_best = warm_best = scratch_best = inc_best = float("inf")
    hits = misses = 0
    identical = True
    for _ in range(max(1, rounds)):
        with tempfile.TemporaryDirectory(prefix="repro-bench-inc-") as tmp:
            def timed(store, training_set):
                ctx = context(store, training_set)
                start = time.perf_counter()
                learned = ctx.learn_timeline()
                return time.perf_counter() - start, learned, ctx

            cold_s, cold, _ = timed(ArtifactStore(tmp), snap0)
            warm_s, warm, _ = timed(ArtifactStore(tmp), snap0)
            scratch_s, scratch, _ = timed(None, snap1)
            inc_s, inc, inc_ctx = timed(ArtifactStore(tmp), snap1)

            counters = inc_ctx.metrics.snapshot()["counters"]
            hits = counters.get("suffix_cache_hits", 0)
            misses = counters.get("suffix_cache_misses", 0)
            identical = identical and all(
                conventions_to_json(inc[label])
                == conventions_to_json(scratch[label])
                for label in scratch)
            identical = identical and all(
                conventions_to_json(warm[label])
                == conventions_to_json(cold[label])
                for label in cold)
            cold_best = min(cold_best, cold_s)
            warm_best = min(warm_best, warm_s)
            scratch_best = min(scratch_best, scratch_s)
            inc_best = min(inc_best, inc_s)

    resolved = hits + misses
    n_suffixes = 24
    return {
        "workload": {
            "suffixes": n_suffixes,
            "items": len(snap0.items),
            "perturbed_suffixes": n_mutated,
            "perturbed_fraction": n_mutated / n_suffixes,
            "rounds": rounds,
            "parallel_workers": workers,
        },
        "cold": {"seconds": cold_best},
        "warm_repeat": {
            "seconds": warm_best,
            "speedup": cold_best / warm_best if warm_best else 0.0,
        },
        "perturbed": {
            "from_scratch_seconds": scratch_best,
            "incremental_seconds": inc_best,
            "speedup": scratch_best / inc_best if inc_best else 0.0,
            "suffix_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / resolved if resolved else 0.0,
            },
            "identical": identical,
        },
    }


def obs_world_items(n_suffixes: int = 16,
                    per_suffix: int = 60) -> List[TrainingItem]:
    """A genuinely multi-suffix workload for the tracer benchmark.

    Unlike :func:`bench_world_items` (whose ``opNN.example.org`` names
    all share the registered domain ``example.org`` and so collapse
    into one dataset), ``opNN-bench.org`` is itself a registered domain
    -- the run emits one ``learn.suffix`` tree per suffix, which is the
    span volume the overhead numbers should be measured against.
    """
    items: List[TrainingItem] = []
    for index in range(n_suffixes):
        suffix = "op%02d-bench.org" % index
        base = 2000 + 101 * index
        for i in range(per_suffix):
            items.append(TrainingItem(
                "as%d-et%d.pop%d.%s" % (base + 13 * i, i % 4, i % 5,
                                        suffix),
                base + 13 * i))
        for i in range(per_suffix // 3):
            items.append(TrainingItem("lo0.cr%d.%s" % (i, suffix), base))
    return items


def run_obs_bench(rounds: int = 5) -> Dict[str, object]:
    """Measure the observability layer's cost; returns the ``obs``
    section.

    Two numbers matter.  *Disabled* overhead -- what every un-traced
    run pays for the instrumentation being present at all -- is the
    per-call cost of a :data:`~repro.obs.trace.NULL_TRACER` span site
    times the spans a traced run of the same workload would emit,
    expressed as a fraction of the untraced wall time.  It is computed
    rather than differenced because the true overhead is far below
    run-to-run timing noise; the per-site cost itself is measured.
    *Enabled* overhead is the wall-time ratio of a traced run over an
    untraced one, best-of at least five rounds each.  Even so the true
    overhead (a few percent) can drown in run-to-run noise and the raw
    difference go negative; the reported fraction is clamped at zero,
    with the raw value and a ``noise_floor`` flag preserved alongside
    so the clamp never hides a measurement.  ``within_budget`` asserts
    the disabled fraction stays under :data:`OBS_OVERHEAD_BUDGET`.
    """
    from repro.obs.trace import NULL_TRACER, Tracer

    # The enabled/disabled delta is small; best-of-N with N >= 5 keeps
    # scheduler noise from swamping it (it still can -- see the clamp).
    rounds = max(rounds, 5)
    world_items = obs_world_items()
    hoiho_off = Hoiho()
    off_seconds = _best_of(lambda: hoiho_off.run(world_items), rounds)

    hoiho_on = Hoiho()

    def traced_run() -> int:
        tracer = Tracer()
        hoiho_on.tracer = tracer
        hoiho_on.run(world_items)
        tracer.close()
        return len(tracer.records)

    spans_per_run = traced_run()
    on_seconds = _best_of(traced_run, rounds)

    # Per-site cost of the no-op path: open + annotate + close one
    # null span, amortised over a large loop.
    loops = 200000

    def null_sites() -> None:
        span_site = NULL_TRACER.span
        for _ in range(loops):
            with span_site("bench", item=1) as span:
                span.set(done=True)

    null_span_seconds = _best_of(null_sites, max(rounds, 3)) / loops
    disabled_overhead = (null_span_seconds * spans_per_run / off_seconds
                         if off_seconds else 0.0)
    enabled_overhead = (on_seconds / off_seconds - 1.0
                        if off_seconds else 0.0)

    return {
        "workload": {
            "world_items": len(world_items),
            "world_suffixes": 16,
            "rounds": rounds,
            "null_span_loops": loops,
        },
        "disabled": {
            "seconds": off_seconds,
            "null_span_seconds": null_span_seconds,
            "spans_per_run": spans_per_run,
            "overhead_fraction": disabled_overhead,
            "budget_fraction": OBS_OVERHEAD_BUDGET,
            "within_budget": disabled_overhead < OBS_OVERHEAD_BUDGET,
        },
        "enabled": {
            "seconds": on_seconds,
            "spans_per_run": spans_per_run,
            # Clamped: a negative measured fraction means the signal
            # sat below timing noise, not that tracing sped us up.
            "overhead_fraction": max(0.0, enabled_overhead),
            "overhead_fraction_raw": enabled_overhead,
            "noise_floor": enabled_overhead < 0.0,
        },
    }


def write_report(path: str = "BENCH_learner.json",
                 rounds: int = 5,
                 jobs: Optional[int] = None,
                 pipeline: bool = True,
                 serve: bool = True,
                 obs: bool = True,
                 incremental: bool = True,
                 http: bool = True,
                 shadow: bool = True,
                 obs_window: bool = True) -> Dict[str, object]:
    """Run the suite and write ``path``; returns the payload."""
    report = run_bench(rounds=rounds, jobs=jobs)
    if pipeline:
        report["pipeline"] = run_pipeline_bench(jobs=jobs)
    if serve:
        report["serve"] = run_serve_bench(jobs=jobs)
    if obs:
        report["obs"] = run_obs_bench()
    if incremental:
        report["incremental"] = run_incremental_bench(jobs=jobs)
    if http:
        report["http"] = run_http_bench()
    if shadow:
        report["shadow"] = run_shadow_bench()
    if obs_window:
        report["obs_window"] = run_obs_window_bench()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_pipeline_section(path: str = "BENCH_learner.json",
                           rounds: int = 2,
                           jobs: Optional[int] = None) -> Dict[str, object]:
    """Refresh only the ``pipeline`` section of an existing report.

    Reads ``path`` if present (starting fresh otherwise), replaces the
    ``pipeline`` key, and writes the file back -- the learner sections
    keep their previous numbers.  Used by ``make bench-pipeline``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    report["pipeline"] = run_pipeline_bench(rounds=rounds, jobs=jobs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_serve_section(path: str = "BENCH_learner.json",
                        rounds: int = 3,
                        jobs: Optional[int] = None) -> Dict[str, object]:
    """Refresh only the ``serve`` section of an existing report.

    Reads ``path`` if present (starting fresh otherwise), replaces the
    ``serve`` key, and writes the file back -- every other section
    keeps its previous numbers.  Used by ``make annotate-bench``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    report["serve"] = run_serve_bench(rounds=rounds, jobs=jobs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_dispatch_section(path: str = "BENCH_learner.json",
                           rounds: int = 3,
                           jobs: Optional[int] = None) -> Dict[str, object]:
    """Refresh only the single-core serve kernels of an existing report.

    Merges :func:`run_dispatch_bench` output into the ``serve`` section
    (replacing ``linear_apply``/``dispatch``/``memo`` and the workload
    counts) while leaving the ``bulk`` numbers -- and every other
    section -- untouched.  The fast inner loop for hot-path work:
    ``make dispatch-bench`` / ``bench_report --dispatch-only``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    serve = report.get("serve")
    if not isinstance(serve, dict):
        serve = {}
    fresh = run_dispatch_bench(rounds=rounds, jobs=jobs)
    workload = serve.get("workload")
    if isinstance(workload, dict):
        workload.update(fresh.pop("workload"))
    serve.update(fresh)
    report["serve"] = serve
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_obs_section(path: str = "BENCH_learner.json",
                      rounds: int = 5) -> Dict[str, object]:
    """Refresh only the ``obs`` section of an existing report.

    Reads ``path`` if present (starting fresh otherwise), replaces the
    ``obs`` key, and writes the file back -- every other section keeps
    its previous numbers.  Used by ``make obs-bench``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    report["obs"] = run_obs_bench(rounds=rounds)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_incremental_section(path: str = "BENCH_learner.json",
                              rounds: int = 2,
                              jobs: Optional[int] = None,
                              ) -> Dict[str, object]:
    """Refresh only the ``incremental`` section of an existing report.

    Reads ``path`` if present (starting fresh otherwise), replaces the
    ``incremental`` key, and writes the file back -- every other
    section keeps its previous numbers.  Used by
    ``make incremental-bench``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    report["incremental"] = run_incremental_bench(rounds=rounds,
                                                  jobs=jobs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_http_section(path: str = "BENCH_learner.json",
                       workers: int = 2) -> Dict[str, object]:
    """Refresh only the ``http`` section of an existing report.

    Reads ``path`` if present (starting fresh otherwise), replaces the
    ``http`` key, and writes the file back -- every other section
    keeps its previous numbers.  Used by ``make http-bench``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    report["http"] = run_http_bench(workers=workers)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_shadow_section(path: str = "BENCH_learner.json",
                         rounds: int = 5) -> Dict[str, object]:
    """Refresh only the ``shadow`` section of an existing report.

    Reads ``path`` if present (starting fresh otherwise), replaces the
    ``shadow`` key, and writes the file back -- every other section
    keeps its previous numbers.  Used by ``make shadow-bench``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    report["shadow"] = run_shadow_bench(rounds=rounds)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_obs_window_section(path: str = "BENCH_learner.json",
                             rounds: int = 3) -> Dict[str, object]:
    """Refresh only the ``obs_window`` section of an existing report.

    Reads ``path`` if present (starting fresh otherwise), replaces the
    ``obs_window`` key, and writes the file back -- every other
    section keeps its previous numbers.  Used by
    ``make obs-window-bench``.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"version": BENCH_VERSION}
    report["version"] = BENCH_VERSION
    report["obs_window"] = run_obs_window_bench(rounds=rounds)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def render_incremental_section(section: Dict[str, object]) -> str:
    """Render an ``incremental`` section (delta-learning report)."""
    workload = section["workload"]
    cold = section["cold"]
    warm = section["warm_repeat"]
    perturbed = section["perturbed"]
    cache = perturbed["suffix_cache"]
    return "\n".join([
        "incremental benchmark (%d suffixes, %d mutated, %s workers)"
        % (workload["suffixes"], workload["perturbed_suffixes"],
           workload.get("parallel_workers", "-")),
        "  cold timeline    : %.3fs" % cold["seconds"],
        "  warm repeat      : %.3fs  speedup %.1fx"
        % (warm["seconds"], warm["speedup"]),
        "  perturbed (~%d%%) : scratch %.3fs  incremental %.3fs  "
        "speedup %.1fx" % (round(100 * workload["perturbed_fraction"]),
                           perturbed["from_scratch_seconds"],
                           perturbed["incremental_seconds"],
                           perturbed["speedup"]),
        "  suffix cache     : %d hit(s), %d miss(es), hit rate %.1f%%  "
        "byte-identical: %s"
        % (cache["hits"], cache["misses"], 100.0 * cache["hit_rate"],
           "yes" if perturbed["identical"] else "NO"),
    ])


def render_obs_section(section: Dict[str, object]) -> str:
    """Render an ``obs`` section (tracer overhead report)."""
    disabled = section["disabled"]
    enabled = section["enabled"]
    verdict = "OK" if disabled["within_budget"] else "OVER BUDGET"
    return "\n".join([
        "observability benchmark (%d spans/run)"
        % disabled["spans_per_run"],
        "  tracing disabled : %.3fs  null-span %.1fns/site  "
        "overhead %.4f%% of run  [%s, budget %.1f%%]"
        % (disabled["seconds"],
           disabled["null_span_seconds"] * 1e9,
           100.0 * disabled["overhead_fraction"], verdict,
           100.0 * disabled["budget_fraction"]),
        "  tracing enabled  : %.3fs  overhead %.1f%% of run"
        % (enabled["seconds"], 100.0 * enabled["overhead_fraction"]),
    ])


def render_obs_window_section(section: Dict[str, object]) -> str:
    """Render an ``obs_window`` section (windowed-telemetry report)."""
    access = section["access_log"]
    window = section["window"]
    verdict = "OK" if section["within_budget"] else "OVER BUDGET"
    return "\n".join([
        "obs-window benchmark (request %.0fus baseline)"
        % (1e6 * section["request_seconds"]),
        "  access log line  : %.1fus enqueue (deferred %.1fus, sync "
        "%.1fus)  %.3f%% of a request"
        % (1e6 * access["line_seconds"],
           1e6 * access.get("drain_line_seconds", 0.0),
           1e6 * access.get("sync_line_seconds", 0.0),
           100.0 * access["fraction_of_request"]),
        "  window fold      : %.0fus/record  %.3f%% of each %.0fs "
        "interval" % (1e6 * window["record_seconds"],
                      100.0 * window["fraction_per_second"],
                      section["workload"]["flush_interval_seconds"]),
        "  combined         : %.3f%% of the hot path  [%s, budget "
        "%.1f%%]" % (100.0 * section["overhead_fraction"], verdict,
                     100.0 * section["budget_fraction"]),
    ])


def render_http_section(section: Dict[str, object]) -> str:
    """Render an ``http`` section (network-serving report)."""
    workload = section["workload"]
    single = section["closed_single"]
    batch = section["closed_batch"]
    open_loop = section["open"]
    return "\n".join([
        "http benchmark (%d workers, %d Zipf hostnames, "
        "fingerprint %s...)"
        % (workload["workers"], workload["zipf_hostnames"],
           workload["workload_fingerprint"][:12]),
        "  closed single    : %.0f req/s  p50 %.2fms  p99 %.2fms  "
        "(%d conns, %d errors)"
        % (single["throughput_rps"], 1e3 * single["latency_p50_s"],
           1e3 * single["latency_p99_s"], single["concurrency"],
           single["errors"]),
        "  closed batch     : %.0f req/s  %.0f hostnames/s  "
        "p50 %.2fms  (batch=%d, %d errors)"
        % (batch["throughput_rps"], batch["hostnames_per_s"],
           1e3 * batch["latency_p50_s"], batch["batch_size"],
           batch["errors"]),
        "  open @ %.0f/s     : %.0f req/s  p50 %.2fms  p99 %.2fms  "
        "(%d errors)"
        % (open_loop["rate"], open_loop["throughput_rps"],
           1e3 * open_loop["latency_p50_s"],
           1e3 * open_loop["latency_p99_s"], open_loop["errors"]),
        "  graceful drain   : exit code %s"
        % section.get("drain_exit_code", "-"),
    ])


def render_shadow_section(section: Dict[str, object]) -> str:
    """Render a ``shadow`` section (dual-annotation report)."""
    workload = section["workload"]
    overhead = section["overhead"]
    ledger = section["ledger"]
    observed = ledger["observed"]
    verdict = "OK" if overhead["within_budget"] else "OVER BUDGET"
    return "\n".join([
        "shadow benchmark (%d conventions, %d Zipf hostnames)"
        % (workload["conventions"], workload["zipf_hostnames"]),
        "  dual annotation  : single %.3fs  dual %.3fs  overhead "
        "%.2fx  [%s, budget %.1fx]"
        % (overhead["single_seconds"], overhead["dual_seconds"],
           overhead["overhead_ratio"], verdict,
           overhead["budget_ratio"]),
        "  divergence ledger: agree %d  p-only %d  c-only %d  "
        "conflict %d  exact: %s  primary-identical: %s"
        % (observed["agree"], observed["primary_only"],
           observed["candidate_only"], observed["conflict"],
           "yes" if ledger["exact"] else "NO",
           "yes" if ledger["primary_identical"] else "NO"),
    ])


def render_serve_section(section: Dict[str, object]) -> str:
    """Render a ``serve`` section (also used by ``serve-stats``).

    ``memo`` and ``bulk`` lines render only when present: a
    ``--dispatch-only`` refresh of a pre-v5 file has no memo kernel
    yet, and a dispatch-only section has no bulk numbers.
    """
    workload = section["workload"]
    linear = section["linear_apply"]
    dispatch = section["dispatch"]
    lines = [
        "serve benchmark (%d conventions, %d hostnames, %s workers)"
        % (workload["conventions"], workload["hostnames"],
           workload.get("parallel_workers", "-")),
        "  linear apply     : %.3fs  (%.0f hostnames/s)"
        % (linear["seconds"], linear["hostnames_per_second"]),
        "  trie dispatch    : cold %.3fs  warm %.3fs  "
        "(%.0f hostnames/s warm)  %.1fx vs linear"
        % (dispatch["cold_seconds"], dispatch["warm_seconds"],
           dispatch["warm_hostnames_per_second"],
           dispatch["speedup_vs_linear"]),
    ]
    memo = section.get("memo")
    if memo:
        lines.append(
            "  zipf memo        : uncached %.3fs  warm %.3fs  "
            "(%.0f hostnames/s warm)  %.1fx  hit rate %.1f%%"
            % (memo["uncached_seconds"], memo["warm_seconds"],
               memo["warm_hostnames_per_second"], memo["memo_speedup"],
               100.0 * memo["hit_rate"]))
    bulk = section.get("bulk")
    if bulk:
        lines.append(
            "  bulk streaming   : serial %.3fs  parallel %.3fs  "
            "speedup %.2fx (%s workers)"
            % (bulk["serial_seconds"], bulk["parallel_seconds"],
               bulk["parallel_speedup"],
               bulk.get("parallel_workers",
                        workload.get("parallel_workers", "-"))))
    return "\n".join(lines)


def render_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a report payload."""
    cache = report.get("cache", {})
    lines = ["learner benchmark (v%s)" % report.get("version", "?")]
    if "suffix_learn" in report:
        suffix = report["suffix_learn"]
        nc = report["evaluate_nc"]
        run = report["run_datasets"]
        lines += [
            "  learn one suffix : cached %.4fs  uncached %.4fs  "
            "speedup %.2fx" % (suffix["cached_seconds"],
                               suffix["uncached_seconds"],
                               suffix["cache_speedup"]),
            "  evaluate_nc set  : cold %.6fs  warm %.6fs  speedup %.1fx"
            % (nc["cold_seconds"], nc["warm_seconds"], nc["warm_speedup"]),
            "  run_datasets     : serial %.3fs  parallel %.3fs  "
            "speedup %.2fx" % (run["serial_seconds"],
                               run["parallel_seconds"],
                               run["parallel_speedup"]),
        ]
    if cache:
        lines.append("  cache counters   : %d vectors built, %d served, "
                     "%d re.match calls, hit rate %.1f%%"
                     % (cache.get("vectors_built", 0),
                        cache.get("vector_hits", 0),
                        cache.get("match_calls", 0),
                        100.0 * cache.get("hit_rate", 0.0)))
    pipeline = report.get("pipeline")
    if pipeline:
        timeline = pipeline["timeline"]
        routing = pipeline["routing"]
        store = pipeline["store"]
        lines += [
            "pipeline benchmark (%d-set timeline, %s workers)"
            % (pipeline["workload"]["training_sets"],
               pipeline["workload"]["parallel_workers"]),
            "  build_timeline   : serial %.3fs  parallel %.3fs  "
            "speedup %.2fx" % (timeline["serial_seconds"],
                               timeline["parallel_seconds"],
                               timeline["parallel_speedup"]),
            "  routing model    : eager %.4fs  lazy first path %.4fs  "
            "speedup %.1fx" % (routing["eager_seconds"],
                               routing["lazy_first_path_seconds"],
                               routing["lazy_speedup"]),
            "  artifact store   : cold %.3fs  warm %.3fs  speedup %.1fx"
            % (store["cold_seconds"], store["warm_seconds"],
               store["warm_speedup"]),
        ]
    serve = report.get("serve")
    if serve:
        lines.append(render_serve_section(serve))
    obs = report.get("obs")
    if obs:
        lines.append(render_obs_section(obs))
    incremental = report.get("incremental")
    if incremental:
        lines.append(render_incremental_section(incremental))
    http = report.get("http")
    if http:
        lines.append(render_http_section(http))
    shadow = report.get("shadow")
    if shadow:
        lines.append(render_shadow_section(shadow))
    obs_window = report.get("obs_window")
    if obs_window:
        lines.append(render_obs_window_section(obs_window))
    return "\n".join(lines)
