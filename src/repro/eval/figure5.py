"""Figure 5: classification of naming conventions across training sets.

The paper's figure plots, per training set, how many conventions Hoiho
classified good/promising/poor, finding 12-55 good NCs per ITDK with
clear growth over time, 55 good NCs for the February 2020 PeeringDB
snapshot, and 206 usable suffixes across all 19 sets.  This experiment
reproduces the series and the aggregates (including the ITDK/PeeringDB
suffix overlap analysis in section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.eval.common import render_table
from repro.eval.context import ExperimentContext
from repro.eval.timeline import KIND_ITDK, KIND_PDB


@dataclass
class Figure5Row:
    """One training set's classification counts."""

    label: str
    kind: str
    method: str
    year: float
    good: int
    promising: int
    poor: int

    @property
    def usable(self) -> int:
        return self.good + self.promising


@dataclass
class Figure5Result:
    """Series plus the section-4 aggregates."""

    rows: List[Figure5Row] = field(default_factory=list)
    total_usable_suffixes: int = 0
    overlap_suffixes: int = 0          # latest ITDK ∩ latest PeeringDB
    overlap_identical: int = 0         # ... with byte-identical regexes
    itdk_only: int = 0
    pdb_only: int = 0


def run(context: ExperimentContext) -> Figure5Result:
    """Learn conventions for every training set and classify them."""
    result = Figure5Result()
    usable_suffixes: Set[str] = set()
    for training_set in context.timeline:
        learned = context.learned(training_set.label)
        counts = learned.class_counts()
        result.rows.append(Figure5Row(
            label=training_set.label, kind=training_set.kind,
            method=training_set.method, year=training_set.year,
            good=counts["good"], promising=counts["promising"],
            poor=counts["poor"]))
        usable_suffixes.update(c.suffix for c in learned.usable())
    result.total_usable_suffixes = len(usable_suffixes)

    itdk = context.learned(context.latest_itdk().label)
    pdb = context.learned(context.latest_pdb().label)
    itdk_usable = {c.suffix: c for c in itdk.usable()}
    pdb_usable = {c.suffix: c for c in pdb.usable()}
    common = set(itdk_usable) & set(pdb_usable)
    result.overlap_suffixes = len(common)
    result.overlap_identical = sum(
        1 for suffix in common
        if itdk_usable[suffix].patterns() == pdb_usable[suffix].patterns())
    result.itdk_only = len(set(itdk_usable) - set(pdb_usable))
    result.pdb_only = len(set(pdb_usable) - set(itdk_usable))
    return result


def render(result: Figure5Result) -> str:
    """The figure as a table plus the aggregate lines."""
    table = render_table(
        ["set", "kind", "method", "good", "promising", "poor", "usable"],
        [(row.label, row.kind, row.method, row.good, row.promising,
          row.poor, row.usable) for row in result.rows],
        title="Figure 5: NC classification per training set")
    lines = [
        table,
        "",
        "usable suffixes across all sets: %d" % result.total_usable_suffixes,
        "latest ITDK vs PeeringDB usable suffixes: %d common "
        "(%d with identical regexes), %d ITDK-only, %d PeeringDB-only"
        % (result.overlap_suffixes, result.overlap_identical,
           result.itdk_only, result.pdb_only),
    ]
    return "\n".join(lines)
