"""Appendix A: merging regexes vs building regex sets.

The paper's figure 7 contrasts three equivalent expressions of the
Equinix convention: NC #7 (two crisp regexes -- what Hoiho selects),
NC #7a (one over-merged regex with nested or-groups) and NC #7b (four
fragmented regexes).  This experiment scores all three on the figure-4
training data and confirms what Hoiho actually learns matches NC #7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.evaluate import NCScore, evaluate_nc
from repro.core.hoiho import learn_suffix
from repro.core.regex_model import Regex
from repro.core.select import LearnedConvention
from repro.core.types import SuffixDataset, TrainingItem
from repro.eval.common import render_table
from repro.paperdata import FIGURE4_ITEMS, NC7_PATTERNS

#: NC #7: what the paper (and our learner) selects.
NC7 = tuple(Regex.raw(pattern) for pattern in NC7_PATTERNS)

#: NC #7a: the over-merged single regex.
NC7A = (
    Regex.raw(r"^(?:p|s)?(\d+)(?:\.[a-z\d]+|-.+)\.equinix\.com$"),
)

#: NC #7b: the fragmented four-regex set.
NC7B = (
    Regex.raw(r"^(\d+)\.[a-z\d]+\.equinix\.com$"),
    Regex.raw(r"^p(\d+)\.[a-z\d]+\.equinix\.com$"),
    Regex.raw(r"^s(\d+)\.[a-z]+\.equinix\.com$"),
    Regex.raw(r"^(\d+)-.+\.equinix\.com$"),
)


@dataclass
class AppendixAResult:
    """Scores of the three equivalent conventions, plus what we learn."""

    scores: List[Tuple[str, int, NCScore]] = field(default_factory=list)
    learned: Optional[LearnedConvention] = None
    learned_matches_nc7: bool = False


def figure4_dataset() -> SuffixDataset:
    """The figure-4 training data as a dataset."""
    return SuffixDataset("equinix.com", FIGURE4_ITEMS)


def run(context=None) -> AppendixAResult:
    """Score NC #7/#7a/#7b and verify the learner's selection."""
    dataset = figure4_dataset()
    result = AppendixAResult()
    for name, regexes in (("NC #7", NC7), ("NC #7a", NC7A),
                          ("NC #7b", NC7B)):
        score = evaluate_nc(regexes, dataset)
        result.scores.append((name, len(regexes), score))
    result.learned = learn_suffix(dataset)
    if result.learned is not None:
        result.learned_matches_nc7 = (
            result.learned.patterns() == [r.pattern for r in NC7])
    return result


def render(result: AppendixAResult) -> str:
    table = render_table(
        ["convention", "regexes", "TP", "FP", "FN", "ATP", "matches"],
        [(name, n, s.tp, s.fp, s.fn, s.atp, s.matches)
         for name, n, s in result.scores],
        title="Appendix A: equivalent conventions on the figure-4 data")
    lines = [table, ""]
    if result.learned is not None:
        lines.append("learner selects: %s"
                     % " | ".join(result.learned.patterns()))
        lines.append("matches the paper's NC #7: %s"
                     % result.learned_matches_nc7)
    return "\n".join(lines)
