"""Experiment harness: regenerate every table and figure of the paper.

Each experiment module exposes a ``run(context)`` returning a structured
result plus a ``render(result)`` producing the textual table the
benchmarks print.  :class:`repro.eval.context.ExperimentContext` shares
the expensive artifacts (world, routing, timeline snapshots) between
experiments.

Experiment index (see DESIGN.md section 4):

========== ================================================
figure5    good/promising NC counts across 19 training sets
figure6    PPV of usable NCs per training set (+ siblings)
table1     taxonomy of ASN placement in usable conventions
table2     validation of the modified bdrmapIT's decisions
section5   agreement/error-rate headline numbers
appendix_a merging vs regex sets on the figure-4 data
ablation   contribution of each learning phase / heuristic
========== ================================================
"""

from repro.eval.context import ExperimentContext, Scale
from repro.eval import (
    figure5,
    figure6,
    table1,
    table2,
    section5,
    section7,
    sensitivity,
    appendix_a,
    ablation,
)

__all__ = [
    "ExperimentContext",
    "Scale",
    "figure5",
    "figure6",
    "table1",
    "table2",
    "section5",
    "section7",
    "sensitivity",
    "appendix_a",
    "ablation",
]
