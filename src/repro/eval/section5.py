"""Section 5 headline numbers: using conventions in bdrmapIT.

Reproduces the paper's core result: feeding all good/promising/poor
conventions back into bdrmapIT raised the agreement between inferred
and extracted ASNs for ASN-labelled routers from 87.4% to 97.1%, cut
the error rate from 1/7.9 to 1/34.5, and used the extracted ASN for
72.8% of the 723 interfaces whose extraction disagreed with the initial
inference -- 82.5% from good NCs, 44.0% from promising, 18.2% from poor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.bdrmapit.hints import HintsOutcome, apply_hints, hints_from_conventions
from repro.bdrmapit.metrics import (
    AccuracyMetrics,
    AgreementMetrics,
    accuracy_against_truth,
    agreement_metrics,
)
from repro.eval.common import pct, ratio_str
from repro.eval.context import ExperimentContext


@dataclass
class Section5Result:
    """Before/after agreement plus usage statistics."""

    label: str
    n_hints: int
    n_incongruent: int
    used: int
    agreement_before: AgreementMetrics = field(
        default_factory=AgreementMetrics)
    agreement_after: AgreementMetrics = field(
        default_factory=AgreementMetrics)
    accuracy_before: AccuracyMetrics = field(default_factory=AccuracyMetrics)
    accuracy_after: AccuracyMetrics = field(default_factory=AccuracyMetrics)
    used_by_class: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    outcome: Optional[HintsOutcome] = None


def run(context: ExperimentContext) -> Section5Result:
    """Apply the latest ITDK's conventions back into bdrmapIT."""
    training_set = context.latest_itdk()
    snapshot_result = training_set.snapshot
    assert snapshot_result is not None
    learned = context.learned(training_set.label)
    world = context.world

    hints = hints_from_conventions(snapshot_result.snapshot,
                                   learned.conventions)
    outcome = apply_hints(snapshot_result.graph,
                          snapshot_result.annotations, hints,
                          world.graph.relationships, world.graph.orgs)

    incongruent = outcome.incongruent()
    labeled_nodes = {hint.node_id for hint in hints}
    result = Section5Result(
        label=training_set.label,
        n_hints=len(hints),
        n_incongruent=len(incongruent),
        used=sum(1 for d in incongruent if d.used),
        agreement_before=agreement_metrics(snapshot_result.annotations,
                                           hints, world.graph.orgs),
        agreement_after=agreement_metrics(outcome.annotations, hints,
                                          world.graph.orgs),
        accuracy_before=accuracy_against_truth(
            snapshot_result.annotations,
            snapshot_result.snapshot.resolution,
            world.graph.orgs, nodes=labeled_nodes),
        accuracy_after=accuracy_against_truth(
            outcome.annotations, snapshot_result.snapshot.resolution,
            world.graph.orgs, nodes=labeled_nodes),
        used_by_class=outcome.used_rate_by_class(),
        outcome=outcome,
    )
    return result


def render(result: Section5Result) -> str:
    lines = [
        "Section 5: using conventions in bdrmapIT (%s)" % result.label,
        "interfaces with extracted ASNs: %d" % result.n_hints,
        "extraction != initial inference: %d interfaces" %
        result.n_incongruent,
        "extracted ASN used for %d/%d (%s) of those" % (
            result.used, result.n_incongruent,
            pct(result.used / result.n_incongruent)
            if result.n_incongruent else "n/a"),
        "agreement (inferred vs extracted, per router): %s -> %s" % (
            pct(result.agreement_before.rate),
            pct(result.agreement_after.rate)),
        "disagreement rate: %s -> %s" % (
            ratio_str(result.agreement_before.error_ratio),
            ratio_str(result.agreement_after.error_ratio)),
        "ground-truth accuracy on labelled routers: %s -> %s" % (
            pct(result.accuracy_before.rate),
            pct(result.accuracy_after.rate)),
        "ground-truth error rate: %s -> %s" % (
            ratio_str(result.accuracy_before.error_ratio),
            ratio_str(result.accuracy_after.error_ratio)),
    ]
    for nc_class in ("good", "promising", "poor"):
        used, total = result.used_by_class.get(nc_class, (0, 0))
        if total:
            lines.append("  used %d/%d (%s) of extractions from %s NCs" %
                         (used, total, pct(used / total), nc_class))
    return "\n".join(lines)
