"""Ablations: what each learning phase and each bdrmapIT heuristic buys.

DESIGN.md calls out the design choices worth isolating:

* Hoiho phases 2 (merging), 3 (character classes), 4 (regex sets) can be
  disabled individually; we measure usable-NC counts and total ATP on
  the latest ITDK training set;
* bdrmapIT's vote rule, link-mate rule, relationship election, and
  destination heuristic can be disabled; we measure ground-truth
  accuracy on ASN-labelled routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.bdrmapit.algorithm import AnnotationConfig, annotate
from repro.bdrmapit.metrics import accuracy_against_truth
from repro.core.hoiho import Hoiho, HoihoConfig
from repro.eval.common import pct, render_table
from repro.eval.context import ExperimentContext


@dataclass
class AblationRow:
    name: str
    usable: int = 0
    good: int = 0
    total_atp: int = 0
    accuracy: float = 0.0


@dataclass
class AblationResult:
    learner_rows: List[AblationRow] = field(default_factory=list)
    bdrmapit_rows: List[AblationRow] = field(default_factory=list)


_LEARNER_VARIANTS: List[Tuple[str, Dict[str, bool]]] = [
    ("full", {}),
    ("no merging (phase 2)", {"enable_merge": False}),
    ("no char classes (phase 3)", {"enable_classes": False}),
    ("no regex sets (phase 4)", {"enable_sets": False}),
    ("phase 1 only", {"enable_merge": False, "enable_classes": False,
                      "enable_sets": False}),
]

_BDRMAPIT_VARIANTS: List[Tuple[str, Dict[str, object]]] = [
    ("full", {}),
    ("no subsequent votes", {"use_votes": False}),
    ("no link-mate rule", {"use_mate_rule": False}),
    ("no relationship election", {"use_relationship_election": False}),
    ("no destination heuristic", {"use_dest_heuristic": False}),
    ("election only", {"use_votes": False,
                       "use_relationship_election": False,
                       "use_dest_heuristic": False}),
]


def run(context: ExperimentContext) -> AblationResult:
    """Run all learner and annotation ablations on the latest ITDK."""
    result = AblationResult()
    training_set = context.latest_itdk()

    for name, overrides in _LEARNER_VARIANTS:
        config = replace(HoihoConfig(), **overrides)
        learned = Hoiho(config).run(training_set.items)
        counts = learned.class_counts()
        row = AblationRow(
            name=name,
            usable=counts["good"] + counts["promising"],
            good=counts["good"],
            total_atp=sum(c.score.atp
                          for c in learned.conventions.values()))
        result.learner_rows.append(row)

    snapshot_result = training_set.snapshot
    assert snapshot_result is not None
    world = context.world
    labeled = {
        snapshot_result.snapshot.resolution.node_of_address[address]
        for address, _ in snapshot_result.snapshot.named_addresses()
        if address in snapshot_result.snapshot.resolution.node_of_address}
    for name, overrides in _BDRMAPIT_VARIANTS:
        config = replace(AnnotationConfig(), **overrides)
        annotations = annotate(snapshot_result.graph,
                               world.graph.relationships,
                               world.graph.orgs, config)
        accuracy = accuracy_against_truth(
            annotations, snapshot_result.snapshot.resolution,
            world.graph.orgs, nodes=labeled)
        result.bdrmapit_rows.append(AblationRow(name=name,
                                                accuracy=accuracy.rate))
    return result


def render(result: AblationResult) -> str:
    learner = render_table(
        ["learner variant", "usable NCs", "good NCs", "total ATP"],
        [(row.name, row.usable, row.good, row.total_atp)
         for row in result.learner_rows],
        title="Ablation: Hoiho learning phases")
    bdrmapit = render_table(
        ["bdrmapIT variant", "accuracy on named routers"],
        [(row.name, pct(row.accuracy)) for row in result.bdrmapit_rows],
        title="Ablation: bdrmapIT heuristics")
    return learner + "\n\n" + bdrmapit
