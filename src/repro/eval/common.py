"""Shared rendering helpers for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string.

    >>> pct(0.925)
    '92.5%'
    """
    return "%.*f%%" % (digits, 100.0 * value)


def ratio_str(value: Optional[float]) -> str:
    """Format the paper's '1/x' error-rate style.

    >>> ratio_str(7.9)
    '1/7.9'
    >>> ratio_str(None)
    '1/inf'
    """
    return "1/inf" if value is None else "1/%.1f" % value


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
