"""The 19 training sets of the paper (section 4).

Seventeen ITDK snapshots span July 2010 to January 2020: the first
twelve annotated with RouterToAsAssignment, the last five with bdrmapIT
(matching the real ITDK history).  Two PeeringDB snapshots complete the
set.  Three growth factors play out along the timeline, as in the paper:
vantage points increase, more operators adopt ASN-embedding conventions
(their adoption years are world properties), and the annotation method
improves in 2017.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.parallel import ParallelConfig, parallel_map
from repro.core.types import TrainingItem
from repro.itdk.builder import BuildConfig
from repro.naming.assigner import NamingConfig
from repro.traceroute.campaign import CampaignConfig
from repro.core.resilience import ResilienceStats, RetryPolicy
from repro.obs.trace import (
    NULL_TRACER,
    Captured,
    Tracer,
    adopt_all,
    resilience_to_span,
    retry_to_span,
)
from repro.pipeline import (
    METHOD_BDRMAPIT,
    METHOD_RTAA,
    PeeringDBTask,
    SITE_TIMELINE,
    SnapshotResult,
    SnapshotSpec,
    SnapshotTask,
    reattach_world,
    run_peeringdb_snapshot_task,
    run_snapshot_task,
)
from repro.topology.world import World
from repro.traceroute.routing import RoutingModel
from repro.util.rand import substream

logger = logging.getLogger(__name__)

KIND_ITDK = "itdk"
KIND_PDB = "peeringdb"

#: (label, year, method) for the 17 ITDK snapshots.
ITDK_TIMELINE = [
    ("2010-07", 2010.5, METHOD_RTAA),
    ("2011-04", 2011.3, METHOD_RTAA),
    ("2011-10", 2011.8, METHOD_RTAA),
    ("2012-07", 2012.5, METHOD_RTAA),
    ("2013-04", 2013.3, METHOD_RTAA),
    ("2013-07", 2013.5, METHOD_RTAA),
    ("2014-04", 2014.3, METHOD_RTAA),
    ("2014-12", 2014.9, METHOD_RTAA),
    ("2015-08", 2015.6, METHOD_RTAA),
    ("2016-03", 2016.2, METHOD_RTAA),
    ("2016-09", 2016.7, METHOD_RTAA),
    ("2017-02", 2017.1, METHOD_RTAA),
    ("2017-08", 2017.6, METHOD_BDRMAPIT),
    ("2018-03", 2018.2, METHOD_BDRMAPIT),
    ("2019-01", 2019.0, METHOD_BDRMAPIT),
    ("2019-04", 2019.3, METHOD_BDRMAPIT),
    ("2020-01", 2020.0, METHOD_BDRMAPIT),
]

#: (label, year) for the PeeringDB snapshots.
PDB_TIMELINE = [
    ("2019-08-pdb", 2019.6),
    ("2020-02-pdb", 2020.1),
]


def vps_for_year(year: float) -> int:
    """Vantage-point count grows roughly linearly over the study period."""
    return max(6, int(round(8 + (year - 2010.0) * 2.6)))


def alias_augment_for_year(year: float) -> float:
    """Alias-resolution completeness improves over the study period.

    MIDAR-era active alias probing got better between 2010 and 2020;
    lower completeness means more routers are seen only through their
    supplier-addressed interface, which is what degrades the
    RouterToAsAssignment-era training quality visible in figure 6.
    """
    return min(0.75, max(0.63, 0.63 + (year - 2010.0) * 0.012))


@dataclass
class TrainingSet:
    """One training set: label, provenance, and the items themselves."""

    label: str
    kind: str                      # itdk | peeringdb
    method: str                    # rtaa | bdrmapit | operator
    year: float
    items: List[TrainingItem]
    snapshot: Optional[SnapshotResult] = None


def _timeline_tasks(world: World, seed: int,
                    routing: Optional[RoutingModel],
                    itdk_labels: Optional[List[str]],
                    include_pdb: bool) -> List[object]:
    """The timeline's snapshot tasks, in timeline order."""
    tasks: List[object] = []
    wanted = set(itdk_labels) if itdk_labels is not None else None
    for label, year, method in ITDK_TIMELINE:
        if wanted is not None and label not in wanted:
            continue
        spec = SnapshotSpec(
            label=label, year=year, method=method,
            n_vps=vps_for_year(year),
            seed=substream(seed, "snapshot", label).randrange(1 << 30),
            build=BuildConfig(
                campaign=CampaignConfig(n_vps=vps_for_year(year)),
                alias_augment_rate=alias_augment_for_year(year)))
        tasks.append(SnapshotTask(world=world, spec=spec, routing=routing))
    if include_pdb:
        for label, year in PDB_TIMELINE:
            pdb_seed = substream(seed, "snapshot", label).randrange(1 << 30)
            tasks.append(PeeringDBTask(world=world, seed=pdb_seed,
                                       label=label, year=year))
    return tasks


def _timeline_worker(task: object) -> object:
    """Dispatch one timeline task (runs in the calling or a worker
    process; the task and result both pickle)."""
    if isinstance(task, SnapshotTask):
        return run_snapshot_task(task)
    assert isinstance(task, PeeringDBTask)
    return run_peeringdb_snapshot_task(task)


def _timeline_worker_traced(task: object) -> Captured:
    """Like :func:`_timeline_worker`, with worker-side span capture.

    Each worker builds its own in-memory tracer and ships the captured
    per-snapshot span tree home inside the result;
    :func:`build_timeline` adopts the records under its ``timeline``
    span so the merged trace reads as one tree.
    """
    tracer = Tracer()
    if isinstance(task, SnapshotTask):
        result = run_snapshot_task(task, tracer=tracer)
    else:
        assert isinstance(task, PeeringDBTask)
        with tracer.span("snapshot.peeringdb", snapshot=task.label):
            result = run_peeringdb_snapshot_task(task)
    tracer.close()
    return Captured(result, tracer.export())


def build_timeline(world: World, seed: int,
                   routing: Optional[RoutingModel] = None,
                   itdk_labels: Optional[List[str]] = None,
                   include_pdb: bool = True,
                   parallel: Optional[ParallelConfig] = None,
                   retry: Optional[RetryPolicy] = None,
                   tracer=NULL_TRACER,
                   ) -> List[TrainingSet]:
    """Produce all training sets for ``world``.

    ``itdk_labels`` restricts which ITDK snapshots run (useful for
    scaled-down benchmarks); default is all seventeen.  ``parallel``
    fans one task per snapshot out over worker processes; tasks are
    generated in timeline order and ``parallel_map`` preserves input
    order, so parallel output is byte-identical to serial output (each
    snapshot is an independent deterministic function of the world and
    its spec).  ``retry`` arms the resilient dispatcher: transient
    worker faults and pool losses are retried instead of aborting the
    build (a snapshot that fails permanently still raises -- a timeline
    with holes would silently skew every downstream experiment).
    ``tracer`` wraps the build in a ``timeline`` span; workers capture
    their per-snapshot spans and the coordinator adopts them under it,
    with retries surfacing live as ``retry`` span events.
    """
    if routing is None:
        routing = RoutingModel(world.graph)
    parallel = parallel or ParallelConfig.serial()
    tasks = _timeline_tasks(world, seed, routing, itdk_labels, include_pdb)
    with tracer.span("timeline", snapshots=len(tasks)) as span:
        if not tracer.enabled:
            results = parallel_map(_timeline_worker, tasks, parallel,
                                   retry=retry, site=SITE_TIMELINE)
        else:
            stats = ResilienceStats()
            captured = parallel_map(
                _timeline_worker_traced, tasks, parallel, retry=retry,
                site=SITE_TIMELINE,
                on_retry=retry_to_span(span, SITE_TIMELINE), stats=stats)
            results = adopt_all(tracer, captured, parent_id=span.span_id)
            if retry is not None:
                resilience_to_span(span, SITE_TIMELINE, stats)

    sets: List[TrainingSet] = []
    for task, result in zip(tasks, results):
        if isinstance(task, SnapshotTask):
            snapshot_result = reattach_world(result, world)
            logger.info("built %s (%s): %d training items",
                        task.spec.label, task.spec.method,
                        len(snapshot_result.training))
            sets.append(TrainingSet(
                label=task.spec.label, kind=KIND_ITDK,
                method=task.spec.method, year=task.spec.year,
                items=snapshot_result.training, snapshot=snapshot_result))
        else:
            sets.append(TrainingSet(label=task.label, kind=KIND_PDB,
                                    method="operator", year=task.year,
                                    items=result))
    return sets
