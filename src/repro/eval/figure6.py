"""Figure 6: evaluation of usable conventions on their training data.

The paper's figure shows the PPV of usable NCs per training set growing
as inference methods improve: 74.8-80.7% for RouterToAsAssignment
snapshots, 83.7-87.4% for bdrmapIT, and 96.0% for PeeringDB, with
sibling ASes accounting for roughly another 1-2 points.  This experiment
reproduces the series and the sibling adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.congruence import Outcome
from repro.core.evaluate import evaluate_nc
from repro.core.types import group_by_suffix
from repro.eval.common import pct, render_table
from repro.eval.context import ExperimentContext


@dataclass
class Figure6Row:
    """PPV of one training set's usable conventions."""

    label: str
    kind: str
    method: str
    year: float
    tp: int
    fp: int
    sibling_fp: int        # FPs whose extraction is a training-ASN sibling

    @property
    def ppv(self) -> float:
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def ppv_with_siblings(self) -> float:
        total = self.tp + self.fp
        return (self.tp + self.sibling_fp) / total if total else 0.0


@dataclass
class Figure6Result:
    rows: List[Figure6Row] = field(default_factory=list)


def run(context: ExperimentContext) -> Figure6Result:
    """Evaluate every usable convention against its own training set."""
    orgs = context.world.graph.orgs
    result = Figure6Result()
    for training_set in context.timeline:
        learned = context.learned(training_set.label)
        datasets = group_by_suffix(training_set.items)
        tp = fp = sibling_fp = 0
        for convention in learned.usable():
            dataset = datasets.get(convention.suffix)
            if dataset is None:
                continue
            score = evaluate_nc(convention.regexes, dataset,
                                keep_outcomes=True)
            tp += score.tp
            fp += score.fp
            for (outcome, extracted), item in zip(score.outcomes,
                                                  dataset.items):
                if outcome is Outcome.FP and extracted \
                        and orgs.are_siblings(int(extracted),
                                              item.train_asn) \
                        and int(extracted) != item.train_asn:
                    sibling_fp += 1
        result.rows.append(Figure6Row(
            label=training_set.label, kind=training_set.kind,
            method=training_set.method, year=training_set.year,
            tp=tp, fp=fp, sibling_fp=sibling_fp))
    return result


def render(result: Figure6Result) -> str:
    return render_table(
        ["set", "method", "TP", "FP", "PPV", "PPV+siblings"],
        [(row.label, row.method, row.tp, row.fp, pct(row.ppv),
          pct(row.ppv_with_siblings)) for row in result.rows],
        title="Figure 6: PPV of usable NCs on training data")
