"""Section-6 limitations, quantified: sensitivity to stale hostnames.

The paper warns (section 6, citing Zhang et al.) that errors in
hostnames bound what any hostname-based method can deliver, and that
the learned regexes should be used together with topological checks.
This experiment sweeps the staleness rate of the synthetic reverse zone
and measures, at each level:

* the PPV of the learned usable conventions (training-side damage);
* the agreement uplift the section-5 feedback loop still achieves;
* the fraction of correct use/ignore decisions (table-2 style).

The expected shape: learned-convention quality and decision accuracy
degrade gracefully as staleness rises, while the topological
reasonableness test keeps wrongly-used extractions rare -- that is the
argument for pairing regexes with topology in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bdrmapit.hints import apply_hints, hints_from_conventions
from repro.bdrmapit.metrics import agreement_metrics
from repro.core.hoiho import Hoiho
from repro.eval.common import pct, render_table
from repro.eval.context import ExperimentContext
from repro.itdk.builder import BuildConfig
from repro.naming.assigner import NamingConfig
from repro.pipeline import METHOD_BDRMAPIT, SnapshotSpec, run_snapshot
from repro.traceroute.campaign import CampaignConfig


@dataclass
class SensitivityRow:
    """Outcomes at one staleness level."""

    stale_rate: float
    usable: int = 0
    usable_ppv: float = 0.0
    agreement_before: float = 0.0
    agreement_after: float = 0.0
    decisions: int = 0
    correct_decisions: int = 0
    wrongly_used: int = 0

    @property
    def decision_rate(self) -> float:
        return (self.correct_decisions / self.decisions
                if self.decisions else 1.0)


@dataclass
class SensitivityResult:
    rows: List[SensitivityRow] = field(default_factory=list)


DEFAULT_STALE_RATES = (0.02, 0.10, 0.25)


def run(context: ExperimentContext,
        stale_rates=DEFAULT_STALE_RATES) -> SensitivityResult:
    """Re-run the 2020 snapshot + feedback loop per staleness level."""
    world = context.world
    result = SensitivityResult()
    for stale_rate in stale_rates:
        naming = NamingConfig(year=2020.0, stale_rate=stale_rate,
                              sloppy_stale_rate=max(stale_rate, 0.35),
                              ixp_stale_rate=min(stale_rate, 0.15))
        spec = SnapshotSpec(
            label="sens-%.2f" % stale_rate, year=2020.0,
            method=METHOD_BDRMAPIT, n_vps=24,
            seed=context.seed + 17, naming=naming,
            build=BuildConfig(campaign=CampaignConfig(n_vps=24)))
        snapshot_result = run_snapshot(world, spec, context.routing)

        learned = Hoiho(context.hoiho_config).run(snapshot_result.training)
        usable = learned.usable()
        tp = sum(c.score.tp for c in usable)
        fp = sum(c.score.fp for c in usable)

        hints = hints_from_conventions(snapshot_result.snapshot,
                                       learned.conventions)
        before = agreement_metrics(snapshot_result.annotations, hints,
                                   world.graph.orgs)
        outcome = apply_hints(snapshot_result.graph,
                              snapshot_result.annotations, hints,
                              world.graph.relationships, world.graph.orgs)
        after = agreement_metrics(outcome.annotations, hints,
                                  world.graph.orgs)

        row = SensitivityRow(
            stale_rate=stale_rate,
            usable=len(usable),
            usable_ppv=tp / (tp + fp) if tp + fp else 0.0,
            agreement_before=before.rate,
            agreement_after=after.rate)
        resolution = snapshot_result.snapshot.resolution
        for decision in outcome.incongruent():
            node = resolution.nodes.get(decision.hint.node_id)
            if node is None or node.true_asn is None:
                continue
            extracted = decision.hint.extracted_asn
            hostname_correct = (
                extracted == node.true_asn
                or world.graph.orgs.are_siblings(extracted,
                                                 node.true_asn))
            row.decisions += 1
            if decision.used == hostname_correct:
                row.correct_decisions += 1
            if decision.used and not hostname_correct:
                row.wrongly_used += 1
        result.rows.append(row)
    return result


def render(result: SensitivityResult) -> str:
    table = render_table(
        ["stale rate", "usable NCs", "NC PPV", "agreement before",
         "agreement after", "decisions", "correct", "wrongly used"],
        [(pct(row.stale_rate), row.usable, pct(row.usable_ppv),
          pct(row.agreement_before), pct(row.agreement_after),
          row.decisions, pct(row.decision_rate), row.wrongly_used)
         for row in result.rows],
        title="Sensitivity: hostname staleness vs the feedback loop "
              "(section 6)")
    return table
