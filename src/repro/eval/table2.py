"""Table 2: validation of the modified bdrmapIT's decisions.

The paper validated the incongruent-extraction decisions against ground
truth from five operators (a transit provider, a European ISP, a large
ISP, and two IXPs) plus PeeringDB cross-validation over 23 suffixes,
finding the modification decided correctly for 92.5% of hostnames: it
used 92.7% of the hostnames carrying the router's correct ASN and only
8.4% of the incorrect (stale/typo) ones.

Here ground truth comes from the synthetic world's true router owners
(for the five operator rows) and from the synthetic PeeringDB records
(for the cross-validation row, with the paper's exclusion of interfaces
where training, extracted and PeeringDB ASNs are all different).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bdrmapit.hints import HintDecision
from repro.eval import section5
from repro.eval.common import pct, render_table
from repro.eval.context import ExperimentContext
from repro.peeringdb.builder import build_peeringdb
from repro.topology.asgraph import Tier
from repro.util.rand import substream


@dataclass
class ValidationRow:
    """One validation source's 2x2 decision counts."""

    name: str
    tp: int = 0   # correct ASN, used
    fn: int = 0   # correct ASN, not used
    fp: int = 0   # incorrect ASN, used
    tn: int = 0   # incorrect ASN, not used

    @property
    def total(self) -> int:
        return self.tp + self.fn + self.fp + self.tn

    @property
    def correct_decisions(self) -> int:
        return self.tp + self.tn

    def add(self, hostname_correct: bool, used: bool) -> None:
        if hostname_correct:
            if used:
                self.tp += 1
            else:
                self.fn += 1
        else:
            if used:
                self.fp += 1
            else:
                self.tn += 1


@dataclass
class Table2Result:
    rows: List[ValidationRow] = field(default_factory=list)
    excluded_all_different: int = 0

    def totals(self) -> ValidationRow:
        total = ValidationRow(name="Total")
        for row in self.rows:
            total.tp += row.tp
            total.fn += row.fn
            total.fp += row.fp
            total.tn += row.tn
        return total


def _operator_domains(context: ExperimentContext,
                      decisions_by_suffix: Dict[str, int],
                      ) -> List[Tuple[str, str]]:
    """Pick the five ground-truth operators, as the paper's table mixes
    them: a transit provider, a European ISP, a large ISP, and two IXPs."""
    world = context.world
    eu = {"de", "fr", "ch", "at", "it", "es", "pl", "se", "no", "fi",
          "dk", "cz", "be", "nl", "gb", "lu"}
    ixp_domains = {ixp.domain for ixp in world.graph.ixps}

    def best(filt) -> Optional[str]:
        candidates = [(count, suffix)
                      for suffix, count in decisions_by_suffix.items()
                      if filt(suffix)]
        if not candidates:
            return None
        return max(candidates)[1]

    nodes_by_domain = {node.domain: node
                       for node in world.graph.nodes.values()}
    chosen: List[Tuple[str, str]] = []
    used: Set[str] = set()

    def is_tier(suffix: str, tier: Tier) -> bool:
        node = nodes_by_domain.get(suffix)
        return node is not None and node.tier is tier and suffix not in used

    transit = best(lambda s: is_tier(s, Tier.TRANSIT))
    if transit:
        chosen.append(("Transit Provider", transit))
        used.add(transit)
    european = best(lambda s: (is_tier(s, Tier.ACCESS)
                               and nodes_by_domain[s].country in eu))
    if european:
        chosen.append(("European ISP", european))
        used.add(european)
    large = best(lambda s: is_tier(s, Tier.ACCESS))
    if large:
        chosen.append(("Large ISP", large))
        used.add(large)
    for label in ("Regional IXP", "Second IXP"):
        ixp = best(lambda s: s in ixp_domains and s not in used)
        if ixp:
            chosen.append((label, ixp))
            used.add(ixp)
    return chosen


def run(context: ExperimentContext) -> Table2Result:
    """Validate incongruent-extraction decisions against ground truth."""
    world = context.world
    section5_result = section5.run(context)
    outcome = section5_result.outcome
    assert outcome is not None
    incongruent: List[HintDecision] = outcome.incongruent()

    decisions_by_suffix: Dict[str, int] = {}
    for decision in incongruent:
        suffix = decision.hint.suffix
        decisions_by_suffix[suffix] = decisions_by_suffix.get(suffix, 0) + 1

    resolution = context.latest_itdk().snapshot.snapshot.resolution  # type: ignore[union-attr]
    orgs = world.graph.orgs

    def hostname_correct_vs_truth(decision: HintDecision) -> Optional[bool]:
        node = resolution.nodes.get(decision.hint.node_id)
        if node is None or node.true_asn is None:
            return None
        extracted = decision.hint.extracted_asn
        return (extracted == node.true_asn
                or orgs.are_siblings(extracted, node.true_asn))

    result = Table2Result()

    # Five operator ground-truth rows.
    operators = _operator_domains(context, decisions_by_suffix)
    operator_suffixes = {suffix for _, suffix in operators}
    for name, suffix in operators:
        row = ValidationRow(name="%s (%s)" % (name, suffix))
        for decision in incongruent:
            if decision.hint.suffix != suffix:
                continue
            correct = hostname_correct_vs_truth(decision)
            if correct is None:
                continue
            row.add(correct, decision.used)
        result.rows.append(row)

    # PeeringDB cross-validation over the remaining IXP suffixes.
    pdb_label = context.latest_pdb().label
    pdb_seed = substream(context.seed, "snapshot", pdb_label) \
        .randrange(1 << 30)
    pdb = build_peeringdb(world, pdb_seed, pdb_label)
    recorded = pdb.by_address()
    pdb_row = ValidationRow(name="PeeringDB")
    pdb_suffixes: Set[str] = set()
    for decision in incongruent:
        if decision.hint.suffix in operator_suffixes:
            continue
        record = recorded.get(decision.hint.address)
        if record is None:
            continue
        extracted = decision.hint.extracted_asn
        training = decision.initial_asn
        # Strict comparison, as in the paper: when the operator records
        # the organization's main ASN but the hostname embeds the
        # sibling actually used at the exchange, the paper scores the
        # (used) extraction as a false positive -- its table-2 FPs were
        # exactly this artifact.
        agrees_pdb = extracted == record.asn
        if not agrees_pdb and training is not None \
                and training != record.asn and training != extracted:
            # Paper: exclude interfaces where training, extracted and
            # PeeringDB ASNs are all different -- no arbiter.
            result.excluded_all_different += 1
            continue
        pdb_suffixes.add(decision.hint.suffix)
        pdb_row.add(agrees_pdb, decision.used)
    pdb_row.name = "PeeringDB (%d suffixes)" % len(pdb_suffixes)
    result.rows.append(pdb_row)
    return result


def render(result: Table2Result) -> str:
    rows = []
    for row in result.rows + [result.totals()]:
        rows.append((row.name, row.tp, row.fn, row.fp, row.tn))
    table = render_table(
        ["source", "correct+used(TP)", "correct+unused(FN)",
         "incorrect+used(FP)", "incorrect+unused(TN)"],
        rows,
        title="Table 2: validation of modified bdrmapIT decisions")
    totals = result.totals()
    lines = [table]
    if totals.total:
        lines.append("")
        lines.append("correct decisions: %d/%d (%s)" % (
            totals.correct_decisions, totals.total,
            pct(totals.correct_decisions / totals.total)))
        correct_hostnames = totals.tp + totals.fn
        incorrect_hostnames = totals.fp + totals.tn
        if correct_hostnames:
            lines.append("used %s of correct hostnames" %
                         pct(totals.tp / correct_hostnames))
        if incorrect_hostnames:
            lines.append("used %s of incorrect hostnames" %
                         pct(totals.fp / incorrect_hostnames))
    if result.excluded_all_different:
        lines.append("excluded (training/extracted/PeeringDB all "
                     "different): %d" % result.excluded_all_different)
    return "\n".join(lines)
