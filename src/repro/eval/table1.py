"""Table 1: taxonomy of how and where operators embed ASNs.

Over the usable conventions of the latest ITDK and PeeringDB sets
combined, the paper reports the placement mix (simple 17.7%, start
50.8%, end 10.8%, bare 5.4%, complex 15.4%) and, over the single-regex
conventions, a contrasting mix where end placement dominates (43.1%) --
operators embedding their *own* ASN (IXP members) put it at the end,
while operators labelling a *neighbor* put it at the start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.select import LearnedConvention
from repro.core.taxonomy import Taxonomy, taxonomy_of
from repro.eval.common import pct, render_table
from repro.eval.context import ExperimentContext


@dataclass
class Table1Result:
    """Counts per taxonomy class, for usable and single-regex NCs."""

    usable: Dict[Taxonomy, int] = field(default_factory=dict)
    single: Dict[Taxonomy, int] = field(default_factory=dict)
    n_usable: int = 0
    n_single: int = 0


def run(context: ExperimentContext) -> Table1Result:
    """Classify the union of latest-ITDK and latest-PeeringDB usable NCs."""
    conventions: Dict[str, LearnedConvention] = {}
    for label in (context.latest_itdk().label, context.latest_pdb().label):
        for convention in context.learned(label).usable():
            conventions.setdefault(convention.suffix, convention)

    result = Table1Result(
        usable={t: 0 for t in Taxonomy},
        single={t: 0 for t in Taxonomy})
    for convention in conventions.values():
        taxonomy = taxonomy_of(convention.regexes)
        result.usable[taxonomy] += 1
        result.n_usable += 1
        if convention.single:
            result.single[taxonomy] += 1
            result.n_single += 1
    return result


def render(result: Table1Result) -> str:
    rows = []
    for taxonomy in Taxonomy:
        usable_share = (result.usable[taxonomy] / result.n_usable
                        if result.n_usable else 0.0)
        single_share = (result.single[taxonomy] / result.n_single
                        if result.n_single else 0.0)
        rows.append((taxonomy.value,
                     "%d (%s)" % (result.usable[taxonomy],
                                  pct(usable_share)),
                     "%d (%s)" % (result.single[taxonomy],
                                  pct(single_share))))
    table = render_table(
        ["placement", "usable NCs", "single-regex NCs"], rows,
        title="Table 1: taxonomy of ASN placement in hostnames")
    return "%s\n\ntotal usable: %d, single-regex: %d" % (
        table, result.n_usable, result.n_single)
