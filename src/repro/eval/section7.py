"""Section 7: future directions, quantified.

Two preliminary investigations from the paper's final section:

* **AS names**: more suffixes embed AS *names* than AS numbers (at
  least 3x in the paper).  We run the dictionary-free name learner
  (:mod:`repro.core.asname`) next to the ASN learner on the latest ITDK
  and compare suffix counts and extraction accuracy against ground
  truth.
* **Expansion beyond traceroute** (the OpenINTEL PTR experiment): the
  learned regexes match far more hostnames in the *full* reverse zone
  than in the traceroute-observed subset (5.4K -> 22.5K in the paper),
  revealing interconnection the measurement infrastructure never saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.asname import NameConvention, NameHoiho
from repro.eval.common import pct, render_table
from repro.eval.context import ExperimentContext
from repro.psl import default_psl


@dataclass
class Section7Result:
    asn_suffixes: int = 0
    name_suffixes: int = 0
    name_conventions: Dict[str, NameConvention] = field(default_factory=dict)
    name_checked: int = 0
    name_correct: int = 0
    observed_matches: int = 0      # learned NC matches on ITDK hostnames
    full_zone_matches: int = 0     # ... on the entire reverse zone

    @property
    def name_accuracy(self) -> float:
        return (self.name_correct / self.name_checked
                if self.name_checked else 0.0)

    @property
    def expansion_factor(self) -> float:
        return (self.full_zone_matches / self.observed_matches
                if self.observed_matches else 0.0)


def run(context: ExperimentContext) -> Section7Result:
    """Run both section-7 investigations on the latest ITDK."""
    training_set = context.latest_itdk()
    snapshot_result = training_set.snapshot
    assert snapshot_result is not None
    world = context.world
    learned = context.learned(training_set.label)
    result = Section7Result()
    result.asn_suffixes = len(learned.usable())

    # -- AS names ---------------------------------------------------------
    result.name_conventions = NameHoiho().run(training_set.items)
    # Suffixes that already yield ASN conventions do not count as
    # name-only capability.
    asn_suffix_set = {c.suffix for c in learned.usable()}
    name_only = {suffix: conv
                 for suffix, conv in result.name_conventions.items()
                 if suffix not in asn_suffix_set}
    result.name_suffixes = len(name_only)
    for suffix, convention in name_only.items():
        for address, hostname in snapshot_result.snapshot.named_addresses():
            if not hostname.endswith("." + suffix):
                continue
            extracted = convention.extract(hostname)
            if extracted is None:
                continue
            truth = world.true_owner(address)
            if truth is None:
                continue
            result.name_checked += 1
            if extracted == truth \
                    or world.graph.orgs.are_siblings(extracted, truth):
                result.name_correct += 1

    # -- expansion beyond traceroute (OpenINTEL analog) --------------------
    conventions = learned.conventions
    psl = default_psl()

    def matches(hostname: str) -> bool:
        suffix = psl.registered_domain(hostname)
        if suffix is None:
            return False
        convention = conventions.get(suffix)
        return (convention is not None
                and convention.usable
                and convention.extract(hostname) is not None)

    for _, hostname in snapshot_result.snapshot.named_addresses():
        if matches(hostname):
            result.observed_matches += 1
    # The full reverse zone: every PTR record operators published,
    # whether or not traceroute ever crossed the interface.
    for record in snapshot_result.naming.records.values():
        if matches(record.hostname):
            result.full_zone_matches += 1
    return result


def render(result: Section7Result) -> str:
    lines = [
        "Section 7: future directions",
        "",
        "AS-name conventions (dictionary-free):",
        "  suffixes with usable ASN conventions:  %d" % result.asn_suffixes,
        "  additional suffixes with learned AS-name conventions: %d"
        % result.name_suffixes,
        "  name-based extraction accuracy vs ground truth: %s (%d checked)"
        % (pct(result.name_accuracy), result.name_checked),
        "",
        "Expansion beyond traceroute (OpenINTEL analog):",
        "  hostnames matching usable NCs, traceroute-observed: %d"
        % result.observed_matches,
        "  hostnames matching usable NCs, full reverse zone:   %d"
        % result.full_zone_matches,
        "  expansion factor: %.1fx" % result.expansion_factor,
    ]
    return "\n".join(lines)
