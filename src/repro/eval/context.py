"""Shared, lazily-computed state for the experiment harness.

Experiments share one synthetic world, its routing model, the 19-set
timeline, and the learned conventions per training set.  Everything is
memoised, so running several experiments (or the same experiment twice
inside pytest-benchmark) pays each cost once.
"""

from __future__ import annotations

import enum
import functools
from typing import Dict, List, Optional

from repro.core.hoiho import Hoiho, HoihoConfig, HoihoResult, \
    _learn_items_worker
from repro.core.parallel import ParallelConfig, parallel_map
from repro.eval.timeline import TrainingSet, build_timeline
from repro.topology.world import World, WorldConfig, generate_world
from repro.traceroute.routing import RoutingModel


class Scale(enum.Enum):
    """How big an experiment run should be."""

    TINY = "tiny"        # unit-test sized
    SMALL = "small"      # seconds; default for benchmarks
    FULL = "full"        # the full-size world

    def world_config(self) -> WorldConfig:
        if self is Scale.TINY:
            return WorldConfig.tiny()
        if self is Scale.SMALL:
            return WorldConfig.small()
        return WorldConfig.default()


class ExperimentContext:
    """Memoised world + timeline + learned conventions.

    ``parallel`` fans independent learning work out over worker
    processes: :meth:`learn_timeline` learns one training set per task,
    and each :meth:`learned` call passes the policy down to
    :class:`~repro.core.hoiho.Hoiho` for per-suffix fan-out.  Parallel
    results are bit-identical to serial ones.
    """

    def __init__(self, seed: int = 2020,
                 scale: Scale = Scale.SMALL,
                 hoiho_config: Optional[HoihoConfig] = None,
                 itdk_labels: Optional[List[str]] = None,
                 parallel: Optional[ParallelConfig] = None) -> None:
        self.seed = seed
        self.scale = scale
        self.hoiho_config = hoiho_config or HoihoConfig()
        self.itdk_labels = itdk_labels
        self.parallel = parallel or ParallelConfig.serial()
        self._world: Optional[World] = None
        self._routing: Optional[RoutingModel] = None
        self._timeline: Optional[List[TrainingSet]] = None
        self._learned: Dict[str, HoihoResult] = {}

    @property
    def world(self) -> World:
        """The shared synthetic world."""
        if self._world is None:
            self._world = generate_world(self.seed,
                                         self.scale.world_config())
        return self._world

    @property
    def routing(self) -> RoutingModel:
        """The shared AS-level routing model."""
        if self._routing is None:
            self._routing = RoutingModel(self.world.graph)
        return self._routing

    @property
    def timeline(self) -> List[TrainingSet]:
        """All training sets (17 ITDK + 2 PeeringDB by default)."""
        if self._timeline is None:
            self._timeline = build_timeline(
                self.world, self.seed, self.routing,
                itdk_labels=self.itdk_labels)
        return self._timeline

    def training_set(self, label: str) -> TrainingSet:
        """One training set by label (KeyError when absent)."""
        for training_set in self.timeline:
            if training_set.label == label:
                return training_set
        raise KeyError(label)

    def learned(self, label: str) -> HoihoResult:
        """Learned conventions for one training set (memoised)."""
        if label not in self._learned:
            training_set = self.training_set(label)
            hoiho = Hoiho(self.hoiho_config, parallel=self.parallel)
            self._learned[label] = hoiho.run(training_set.items)
        return self._learned[label]

    def learn_timeline(self,
                       labels: Optional[List[str]] = None,
                       ) -> Dict[str, HoihoResult]:
        """Learn every (or the named) training sets, fanning out.

        One worker task per training set -- the whole 19-set timeline
        learns concurrently under a ``process`` backend.  Workers run
        the learner serially inside (no nested pools); results merge
        into the memo in timeline order, so repeated calls and mixed
        :meth:`learned` access stay deterministic.
        """
        if labels is None:
            labels = [t.label for t in self.timeline]
        missing = [label for label in labels if label not in self._learned]
        if missing:
            worker = functools.partial(_learn_items_worker,
                                       self.hoiho_config)
            batches = [self.training_set(label).items for label in missing]
            results = parallel_map(worker, batches, self.parallel)
            for label, result in zip(missing, results):
                self._learned[label] = result
        return {label: self._learned[label] for label in labels}

    def latest_itdk(self) -> TrainingSet:
        """The most recent ITDK training set in this context."""
        itdk = [t for t in self.timeline if t.kind == "itdk"]
        if not itdk:
            raise RuntimeError("no ITDK sets in this context")
        return itdk[-1]

    def latest_pdb(self) -> TrainingSet:
        """The most recent PeeringDB training set."""
        pdb = [t for t in self.timeline if t.kind == "peeringdb"]
        if not pdb:
            raise RuntimeError("no PeeringDB sets in this context")
        return pdb[-1]
