"""Shared, lazily-computed state for the experiment harness.

Experiments share one synthetic world, its routing model, the 19-set
timeline, and the learned conventions per training set.  Everything is
memoised, so running several experiments (or the same experiment twice
inside pytest-benchmark) pays each cost once.
"""

from __future__ import annotations

import enum
import functools
from typing import Dict, List, Optional

from repro.core.hoiho import Hoiho, HoihoConfig, HoihoResult, \
    SITE_LEARN, _learn_items_worker, _learn_items_worker_traced
from repro.core.parallel import ParallelConfig, parallel_map
from repro.core.resilience import ResilienceStats, RetryPolicy
from repro.eval.timeline import TrainingSet, build_timeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    adopt_all,
    resilience_to_span,
    retry_to_span,
)
from repro.store import ArtifactStore, KIND_HOIHO, KIND_TIMELINE, KIND_WORLD
from repro.topology.world import World, WorldConfig, generate_world
from repro.traceroute.routing import RoutingModel


class Scale(enum.Enum):
    """How big an experiment run should be."""

    TINY = "tiny"        # unit-test sized
    SMALL = "small"      # seconds; default for benchmarks
    FULL = "full"        # the full-size world

    def world_config(self) -> WorldConfig:
        if self is Scale.TINY:
            return WorldConfig.tiny()
        if self is Scale.SMALL:
            return WorldConfig.small()
        return WorldConfig.default()


class ExperimentContext:
    """Memoised world + timeline + learned conventions.

    ``parallel`` fans independent work out over worker processes:
    :meth:`timeline` builds one snapshot per task,
    :meth:`learn_timeline` learns one training set per task, and each
    :meth:`learned` call passes the policy down to
    :class:`~repro.core.hoiho.Hoiho` for per-suffix fan-out.  Parallel
    results are bit-identical to serial ones.  ``retry`` arms the
    resilient dispatcher on every one of those fan-outs (worker loss
    and transient faults are absorbed; permanent failures still raise).

    ``store`` plugs in a persistent
    :class:`~repro.store.ArtifactStore`: generated worlds, built
    timelines, and learned conventions round-trip through it keyed by a
    fingerprint of the full configuration, so a warm store skips
    regeneration entirely and any config change invalidates by
    construction (the fingerprint moves).

    With a store attached, learning is also **incremental** at suffix
    granularity (see :mod:`repro.core.delta`): every suffix's training
    set is content-fingerprinted, learned once, and reused wherever the
    identical training problem recurs -- repeat runs, *and* later
    snapshots in which that suffix's observations did not change.  The
    whole-result hoiho cache stays layered on top as the fast path.
    ``suffix_cache=False`` disables the per-suffix layer only.
    """

    def __init__(self, seed: int = 2020,
                 scale: Scale = Scale.SMALL,
                 hoiho_config: Optional[HoihoConfig] = None,
                 itdk_labels: Optional[List[str]] = None,
                 include_pdb: bool = True,
                 parallel: Optional[ParallelConfig] = None,
                 store: Optional[ArtifactStore] = None,
                 retry: Optional[RetryPolicy] = None,
                 tracer=NULL_TRACER,
                 metrics: Optional[MetricsRegistry] = None,
                 suffix_cache: bool = True) -> None:
        self.seed = seed
        self.scale = scale
        self.hoiho_config = hoiho_config or HoihoConfig()
        self.itdk_labels = itdk_labels
        self.include_pdb = include_pdb
        self.parallel = parallel or ParallelConfig.serial()
        self.store = store
        self.retry = retry
        self.suffix_cache = suffix_cache
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if store is not None:
            # The store observes through the context's tracer/registry
            # (store.get/store.put spans, store_* counters).
            store.tracer = tracer
            store.metrics = self.metrics
        self._world: Optional[World] = None
        self._routing: Optional[RoutingModel] = None
        self._timeline: Optional[List[TrainingSet]] = None
        self._learned: Dict[str, HoihoResult] = {}

    # -- store fingerprints -------------------------------------------------

    def _world_payload(self) -> Dict[str, object]:
        return {"kind": "world", "seed": self.seed,
                "config": self.scale.world_config()}

    def _timeline_payload(self) -> Dict[str, object]:
        payload = self._world_payload()
        payload.update({"kind": "timeline",
                        "itdk_labels": self.itdk_labels,
                        "include_pdb": self.include_pdb})
        return payload

    def _hoiho_payload(self, label: str) -> Dict[str, object]:
        payload = self._timeline_payload()
        payload.update({"kind": "hoiho", "label": label,
                        "hoiho_config": self.hoiho_config})
        return payload

    @property
    def world(self) -> World:
        """The shared synthetic world."""
        if self._world is None:
            with self.tracer.span("stage.world", scale=self.scale.value,
                                  seed=self.seed) as span:
                if self.store is not None:
                    cached = self.store.get(KIND_WORLD,
                                            self._world_payload())
                    if cached is not None:
                        span.set(cached=True)
                        self._world = cached
                        return self._world
                self._world = generate_world(self.seed,
                                             self.scale.world_config())
                if self.store is not None:
                    self.store.put(KIND_WORLD, self._world_payload(),
                                   self._world)
        return self._world

    @property
    def routing(self) -> RoutingModel:
        """The shared AS-level routing model (lazily solved per dst)."""
        if self._routing is None:
            self._routing = RoutingModel(self.world.graph)
        return self._routing

    @property
    def timeline(self) -> List[TrainingSet]:
        """All training sets (17 ITDK + 2 PeeringDB by default)."""
        if self._timeline is None:
            world = self.world  # materialise outside the timeline stage
            with self.tracer.span("stage.timeline") as span:
                if self.store is not None:
                    cached = self.store.get(KIND_TIMELINE,
                                            self._timeline_payload())
                    if cached is not None:
                        span.set(cached=True)
                        self._timeline = self._adopt_timeline(cached)
                        return self._timeline
                self._timeline = build_timeline(
                    world, self.seed, self.routing,
                    itdk_labels=self.itdk_labels,
                    include_pdb=self.include_pdb,
                    parallel=self.parallel,
                    retry=self.retry,
                    tracer=self.tracer)
                span.set(sets=len(self._timeline))
                if self.store is not None:
                    self.store.put(KIND_TIMELINE, self._timeline_payload(),
                                   self._strip_worlds(self._timeline))
                    self._adopt_timeline(self._timeline)
        return self._timeline

    @staticmethod
    def _strip_worlds(timeline: List[TrainingSet]) -> List[TrainingSet]:
        """Drop per-snapshot world references before pickling.

        Every snapshot result references the same world; pickling the
        timeline as-is would embed a full copy per call graph.  The
        world is stored (and restored) separately.
        """
        for training_set in timeline:
            if training_set.snapshot is not None:
                training_set.snapshot.world = None  # type: ignore
        return timeline

    def _adopt_timeline(self,
                        timeline: List[TrainingSet]) -> List[TrainingSet]:
        """Re-attach this context's world to a (de)serialised timeline."""
        for training_set in timeline:
            if training_set.snapshot is not None:
                training_set.snapshot.world = self.world
        return timeline

    def training_set(self, label: str) -> TrainingSet:
        """One training set by label (KeyError when absent)."""
        for training_set in self.timeline:
            if training_set.label == label:
                return training_set
        raise KeyError(label)

    def learned(self, label: str) -> HoihoResult:
        """Learned conventions for one training set (memoised)."""
        if label not in self._learned:
            # No eager self.timeline here: a warm hoiho cache must keep
            # skipping the timeline build entirely.
            with self.tracer.span("stage.learn", label=label) as span:
                if self.store is not None:
                    cached = self.store.get(KIND_HOIHO,
                                            self._hoiho_payload(label))
                    if cached is not None:
                        span.set(cached=True)
                        self._learned[label] = cached
                        return self._learned[label]
                training_set = self.training_set(label)
                hoiho = Hoiho(self.hoiho_config, parallel=self.parallel,
                              retry=self.retry, tracer=self.tracer,
                              store=self._suffix_store(),
                              metrics=self.metrics)
                self._learned[label] = hoiho.run(training_set.items)
                if self.store is not None:
                    self.store.put(KIND_HOIHO, self._hoiho_payload(label),
                                   self._learned[label])
        return self._learned[label]

    def learn_timeline(self,
                       labels: Optional[List[str]] = None,
                       ) -> Dict[str, HoihoResult]:
        """Learn every (or the named) training sets, fanning out.

        One worker task per training set -- the whole 19-set timeline
        learns concurrently under a ``process`` backend.  Workers run
        the learner serially inside (no nested pools); results merge
        into the memo in timeline order, so repeated calls and mixed
        :meth:`learned` access stay deterministic.
        """
        if labels is None:
            labels = [t.label for t in self.timeline]
        missing = [label for label in labels if label not in self._learned]
        if not missing:
            return {label: self._learned[label] for label in labels}
        with self.tracer.span("stage.learn", sets=len(missing)) as span:
            if self.store is not None:
                still_missing = []
                for label in missing:
                    cached = self.store.get(KIND_HOIHO,
                                            self._hoiho_payload(label))
                    if cached is not None:
                        self._learned[label] = cached
                    else:
                        still_missing.append(label)
                missing = still_missing
                span.set(cached=len(labels) - len(missing))
            if missing:
                self._learn_missing(missing, span)
        return {label: self._learned[label] for label in labels}

    def _suffix_store(self) -> Optional[ArtifactStore]:
        """The store to use for per-suffix artifacts (None when the
        suffix-cache layer is disabled or no store is attached)."""
        return self.store if self.suffix_cache else None

    def _learn_missing(self, missing: List[str], span) -> None:
        """Fan the uncached training sets out to the learner workers.

        With tracing on, workers run the traced entry point and their
        span trees (one ``learn.run`` per training set) are adopted
        under the ``stage.learn`` span; retries surface as live span
        events plus a post-run :class:`ResilienceStats` summary.

        With a store attached (and the suffix cache enabled), learning
        goes through the delta planner instead: only suffixes whose
        training set is not already content-addressed in the store are
        dispatched, and identical suffix training sets shared between
        snapshots learn exactly once.
        """
        if self._suffix_store() is not None:
            self._learn_missing_incremental(missing, span)
            return
        batches = [self.training_set(label).items for label in missing]
        if not self.tracer.enabled:
            worker = functools.partial(_learn_items_worker,
                                       self.hoiho_config)
            results = parallel_map(worker, batches, self.parallel,
                                   retry=self.retry, site=SITE_LEARN)
        else:
            worker = functools.partial(_learn_items_worker_traced,
                                       self.hoiho_config)
            stats = ResilienceStats()
            captured = parallel_map(
                worker, batches, self.parallel, retry=self.retry,
                site=SITE_LEARN,
                on_retry=retry_to_span(span, SITE_LEARN), stats=stats)
            results = adopt_all(self.tracer, captured,
                                parent_id=span.span_id)
            if self.retry is not None:
                resilience_to_span(span, SITE_LEARN, stats)
        for label, result in zip(missing, results):
            self._learned[label] = result
            if self.store is not None:
                self.store.put(KIND_HOIHO, self._hoiho_payload(label),
                               result)

    def _learn_missing_incremental(self, missing: List[str],
                                   span) -> None:
        """Delta-driven timeline learning (see :mod:`repro.core.delta`).

        Plans every missing training set's suffixes, resolves them
        against the store's ``suffixes/`` namespace, dedupes the misses
        by content fingerprint (a suffix whose training set is
        identical across snapshots learns once), and fans only the
        unique misses out in ONE dispatch -- so the pool spins up once
        for the whole timeline rather than once per snapshot.  Results
        are assembled per label in the same sorted-suffix order the
        from-scratch path produces, so they are byte-identical.
        """
        from repro.core.delta import (
            assemble_result,
            dedupe_plans,
            plan_timeline,
            resolve_plans,
        )
        from repro.core.hoiho import (
            _learn_artifact_worker,
            _learn_artifact_worker_traced,
        )
        from repro.store import KIND_SUFFIX
        store = self._suffix_store()
        sets = [self.training_set(label) for label in missing]
        plan = plan_timeline(sets, self.hoiho_config)
        span.set(**plan.attrs())
        hits, misses = resolve_plans(store, plan.all_plans(),
                                     metrics=self.metrics)
        span.set(suffix_cache_hits=len(hits),
                 suffix_cache_misses=len(misses))
        artifacts = {p.fingerprint: artifact for p, artifact in hits}
        # Dedupe by fingerprint: one dispatch per unique training
        # problem, shared by every (label, suffix) plan in its group.
        groups = dedupe_plans(misses)
        batches = [group[0].dataset for group in groups]
        if not self.tracer.enabled:
            worker = functools.partial(_learn_artifact_worker,
                                       self.hoiho_config)
            results = parallel_map(worker, batches, self.parallel,
                                   retry=self.retry, site=SITE_LEARN)
        else:
            worker = functools.partial(_learn_artifact_worker_traced,
                                       self.hoiho_config)
            stats = ResilienceStats()
            captured = parallel_map(
                worker, batches, self.parallel, retry=self.retry,
                site=SITE_LEARN,
                on_retry=retry_to_span(span, SITE_LEARN), stats=stats)
            results = adopt_all(self.tracer, captured,
                                parent_id=span.span_id)
            if self.retry is not None:
                resilience_to_span(span, SITE_LEARN, stats)
        for group, artifact in zip(groups, results):
            store.put(KIND_SUFFIX, group[0].payload, artifact)
            artifacts[group[0].fingerprint] = artifact
        for label_plan in plan.labels:
            result = assemble_result(label_plan, artifacts)
            self._learned[label_plan.label] = result
            self.store.put(KIND_HOIHO,
                           self._hoiho_payload(label_plan.label), result)

    def run_fingerprint(self) -> str:
        """One fingerprint covering everything a run depends on.

        The union of the timeline payload and the learner config -- the
        same inputs whose pieces key the artifact store -- so two runs
        with identical manifest fingerprints produced identical
        artifacts.
        """
        from repro.store import fingerprint
        payload = self._timeline_payload()
        payload.update({"kind": "run", "hoiho_config": self.hoiho_config})
        return fingerprint(payload)

    def manifest(self, wall_seconds: float,
                 trace_path: Optional[str] = None) -> Dict[str, object]:
        """The run manifest document (see :mod:`repro.obs.manifest`).

        Call after the run's stages completed; per-stage durations are
        aggregated from the tracer's top-level spans and the metrics
        snapshot captures the registry at this moment.
        """
        from repro.obs.manifest import build_manifest
        return build_manifest(
            fingerprint=self.run_fingerprint(), seed=self.seed,
            scale=self.scale.value, records=self.tracer.export(),
            wall_seconds=wall_seconds,
            metrics=self.metrics.snapshot(), trace_path=trace_path)

    def latest_itdk(self) -> TrainingSet:
        """The most recent ITDK training set in this context."""
        itdk = [t for t in self.timeline if t.kind == "itdk"]
        if not itdk:
            raise RuntimeError("no ITDK sets in this context")
        return itdk[-1]

    def latest_pdb(self) -> TrainingSet:
        """The most recent PeeringDB training set."""
        pdb = [t for t in self.timeline if t.kind == "peeringdb"]
        if not pdb:
            raise RuntimeError("no PeeringDB sets in this context")
        return pdb[-1]
