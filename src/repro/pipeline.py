"""End-to-end pipeline: synthetic world to Hoiho training data.

This module chains the substrates exactly the way CAIDA's production
pipeline chains the real systems: assign hostnames to a world, run a
traceroute campaign, build an ITDK snapshot, annotate routers with
RouterToAsAssignment or bdrmapIT, and emit (hostname, training ASN)
items for the learner.  PeeringDB training sets come straight from the
synthetic netixlan records.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.asn.org import ASOrgMap
from repro.bdrmapit.algorithm import AnnotationConfig, annotate
from repro.bdrmapit.graph import RouterGraph, build_router_graph
from repro.core.types import TrainingItem
from repro.itdk.builder import BuildConfig, BuiltSnapshot, build_snapshot
from repro.itdk.snapshot import ITDKSnapshot
from repro.naming.assigner import NamingConfig, NamingOutcome, assign_hostnames
from repro.obs.trace import NULL_TRACER
from repro.peeringdb.builder import PeeringDBConfig, build_peeringdb
from repro.peeringdb.snapshot import PeeringDBSnapshot
from repro.rtaa.rtaa import assign_asns as rtaa_assign
from repro.topology.world import World
from repro.traceroute.campaign import CampaignConfig
from repro.traceroute.probe import Trace
from repro.traceroute.routing import RoutingModel
from repro.util.ipaddr import int_to_ip

METHOD_RTAA = "rtaa"
METHOD_BDRMAPIT = "bdrmapit"


@dataclass
class SnapshotSpec:
    """One training-set snapshot: a point on the paper's 2010-2020 axis."""

    label: str                       # e.g. "2020-01"
    year: float = 2020.0
    method: str = METHOD_BDRMAPIT    # rtaa | bdrmapit
    n_vps: int = 20
    seed: int = 0                    # snapshot-specific randomness
    naming: Optional[NamingConfig] = None
    build: Optional[BuildConfig] = None

    def naming_config(self) -> NamingConfig:
        """Naming config with the snapshot year filled in."""
        if self.naming is not None:
            return self.naming
        return NamingConfig(year=self.year)

    def build_config(self) -> BuildConfig:
        """ITDK build config with the VP count filled in."""
        if self.build is not None:
            return self.build
        return BuildConfig(campaign=CampaignConfig(n_vps=self.n_vps))


@dataclass
class SnapshotResult:
    """Everything produced for one snapshot."""

    spec: SnapshotSpec
    world: World
    naming: NamingOutcome
    snapshot: ITDKSnapshot
    graph: RouterGraph
    annotations: Dict[str, int]
    training: List[TrainingItem] = field(default_factory=list)
    traces: List["Trace"] = field(default_factory=list)


def run_snapshot(world: World, spec: SnapshotSpec,
                 routing: Optional[RoutingModel] = None,
                 tracer=NULL_TRACER) -> SnapshotResult:
    """Produce one snapshot's ITDK, annotations, and training items.

    ``tracer`` wraps the run in a ``snapshot`` span (labelled with the
    spec's label/method) with one child span per stage -- the record
    ``trace summary`` renders per snapshot when the timeline fans these
    out to worker processes.
    """
    with tracer.span("snapshot", snapshot=spec.label,
                     method=spec.method) as span:
        if routing is None:
            routing = RoutingModel(world.graph)
        with tracer.span("snapshot.naming"):
            naming = assign_hostnames(world, spec.seed,
                                      spec.naming_config())
        with tracer.span("snapshot.build"):
            built: BuiltSnapshot = build_snapshot(
                world, naming, spec.seed, spec.label, routing=routing,
                config=spec.build_config())
            snapshot = built.snapshot
        with tracer.span("snapshot.graph"):
            graph = build_router_graph(snapshot.resolution, built.traces,
                                       world.plan.route_table)

        with tracer.span("snapshot.annotate", method=spec.method):
            if spec.method == METHOD_RTAA:
                annotations = rtaa_assign(snapshot.resolution,
                                          world.plan.route_table,
                                          world.graph.relationships)
            elif spec.method == METHOD_BDRMAPIT:
                annotations = annotate(graph, world.graph.relationships,
                                       world.graph.orgs,
                                       AnnotationConfig(), tracer=tracer)
            else:
                raise ValueError("unknown method %r" % spec.method)
            snapshot.set_annotations(annotations, spec.method)

        with tracer.span("snapshot.training"):
            training = training_items_from_itdk(snapshot)
        span.set(items=len(training))
    return SnapshotResult(spec=spec, world=world, naming=naming,
                          snapshot=snapshot, graph=graph,
                          annotations=annotations, training=training,
                          traces=built.traces)


def training_items_from_itdk(snapshot: ITDKSnapshot) -> List[TrainingItem]:
    """(hostname, inferred ASN) items for every annotated named address."""
    items: List[TrainingItem] = []
    for address, hostname in snapshot.named_addresses():
        asn = snapshot.annotation_of_address(address)
        if asn is None or asn <= 0:
            continue
        items.append(TrainingItem(hostname=hostname, train_asn=asn,
                                  address=int_to_ip(address)))
    return items


def training_items_from_peeringdb(pdb: PeeringDBSnapshot,
                                  naming: NamingOutcome) -> List[TrainingItem]:
    """(hostname, recorded ASN) items from netixlan records."""
    items: List[TrainingItem] = []
    for record in pdb.netixlans:
        hostname = naming.hostname(record.ipaddr4)
        if hostname is None:
            continue
        items.append(TrainingItem(hostname=hostname, train_asn=record.asn,
                                  address=record.ip))
    return items


def run_peeringdb_snapshot(world: World, seed: int, label: str,
                           year: float = 2020.0,
                           naming: Optional[NamingOutcome] = None,
                           config: Optional[PeeringDBConfig] = None,
                           ) -> List[TrainingItem]:
    """Produce a PeeringDB training set (hostnames + recorded ASNs)."""
    if naming is None:
        naming = assign_hostnames(world, seed, NamingConfig(year=year))
    pdb = build_peeringdb(world, seed, label, config)
    return training_items_from_peeringdb(pdb, naming)


# -- picklable worker entry points -------------------------------------------
#
# ``parallel_map`` with a process backend needs module-level callables
# whose single argument pickles cleanly.  These wrap the two snapshot
# producers for the timeline's per-snapshot fan-out
# (:func:`repro.eval.timeline.build_timeline`).

#: Fault-injection site label for the snapshot fan-out (one item per
#: :class:`SnapshotTask` / :class:`PeeringDBTask`, in timeline order).
SITE_TIMELINE = "timeline"

@dataclass(frozen=True)
class SnapshotTask:
    """One ITDK snapshot to build in a worker process."""

    world: World
    spec: SnapshotSpec
    routing: Optional[RoutingModel] = None


@dataclass(frozen=True)
class PeeringDBTask:
    """One PeeringDB training set to build in a worker process."""

    world: World
    seed: int
    label: str
    year: float = 2020.0


def run_snapshot_task(task: SnapshotTask,
                      tracer=NULL_TRACER) -> SnapshotResult:
    """Worker entry point: build one ITDK snapshot.

    The returned result carries ``world=None`` -- shipping the world
    back from every worker would multiply the pickle payload by the
    snapshot count; the caller re-attaches its own reference
    (:func:`reattach_world`).
    """
    result = run_snapshot(task.world, task.spec, task.routing,
                          tracer=tracer)
    result.world = None  # type: ignore[assignment]
    return result


def run_peeringdb_snapshot_task(task: PeeringDBTask) -> List[TrainingItem]:
    """Worker entry point: build one PeeringDB training set."""
    return run_peeringdb_snapshot(task.world, task.seed, task.label,
                                  year=task.year)


def reattach_world(result: SnapshotResult, world: World) -> SnapshotResult:
    """Restore the world reference a worker stripped before returning."""
    result.world = world
    return result
