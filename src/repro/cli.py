"""Command-line driver: ``repro-hoiho <command> [options]``.

Experiment commands regenerate the paper's tables and figures::

    repro-hoiho figure5 --scale small --seed 2020
    repro-hoiho section5
    repro-hoiho all --scale tiny

Workflow commands run the learner on user data::

    repro-hoiho learn  --hostnames names.txt --save conv.json
    repro-hoiho report --hostnames names.txt
    repro-hoiho apply  --conventions conv.json --hostnames more.txt

Hostname files carry one ``hostname asn`` pair per line for learn/report
(`#` comments allowed); for apply, a bare hostname per line suffices.

``--jobs N`` fans learning out over N worker processes (0 = one per
CPU); results are bit-identical to serial runs.  ``repro-hoiho bench``
runs the learner benchmark suite and refreshes ``BENCH_learner.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.core.hoiho import Hoiho
from repro.core.io import conventions_from_json, conventions_to_json
from repro.core.parallel import ParallelConfig
from repro.core.report import render_result
from repro.core.types import TrainingItem, group_by_suffix
from repro.eval import (
    ExperimentContext,
    Scale,
    ablation,
    appendix_a,
    figure5,
    figure6,
    section5,
    section7,
    sensitivity,
    table1,
    table2,
)

_EXPERIMENTS = {
    "figure5": figure5,
    "figure6": figure6,
    "table1": table1,
    "table2": table2,
    "section5": section5,
    "section7": section7,
    "sensitivity": sensitivity,
    "appendix-a": appendix_a,
    "ablation": ablation,
}

_WORKFLOWS = ("learn", "report", "apply", "bench")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hoiho",
        description="Reproduce 'Learning to Extract and Use ASNs in "
                    "Hostnames' (IMC 2020) on a synthetic Internet, or "
                    "run the learner on your own hostname data.")
    parser.add_argument("command",
                        choices=sorted(_EXPERIMENTS) + ["all"]
                        + list(_WORKFLOWS),
                        help="experiment to reproduce, or workflow verb")
    parser.add_argument("--seed", type=int, default=2020,
                        help="master seed for the synthetic world")
    parser.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.SMALL.value,
                        help="world size (tiny/small/full)")
    parser.add_argument("--hostnames", metavar="FILE",
                        help="input file ('hostname asn' lines for "
                             "learn/report; bare hostnames for apply)")
    parser.add_argument("--save", metavar="FILE",
                        help="learn: write conventions JSON here")
    parser.add_argument("--conventions", metavar="FILE",
                        help="apply: conventions JSON from a prior learn")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for learning "
                             "(1 = serial, 0 = one per CPU)")
    parser.add_argument("--output", metavar="FILE",
                        default="BENCH_learner.json",
                        help="bench: where to write the JSON report")
    return parser


def _read_training(path: str) -> List[TrainingItem]:
    items: List[TrainingItem] = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 2:
                print("skipping malformed line: %r" % raw,
                      file=sys.stderr)
                continue
            items.append(TrainingItem(hostname=fields[0],
                                      train_asn=int(fields[1])))
    return items


def _read_hostnames(path: str) -> List[str]:
    with open(path, encoding="utf-8") as handle:
        return [line.strip().split()[0] for line in handle
                if line.strip() and not line.startswith("#")]


def _run_experiment(name: str, context: ExperimentContext) -> str:
    module = _EXPERIMENTS[name]
    result = module.run(context)
    return module.render(result)


def _cmd_learn(args: argparse.Namespace) -> int:
    if args.hostnames is None:
        print("learn requires --hostnames FILE", file=sys.stderr)
        return 2
    items = _read_training(args.hostnames)
    result = Hoiho(parallel=ParallelConfig.from_jobs(args.jobs)).run(items)
    for suffix in sorted(result.conventions):
        convention = result.conventions[suffix]
        print("%s [%s] atp=%d ppv=%.2f" % (suffix,
                                           convention.nc_class.value,
                                           convention.score.atp,
                                           convention.score.ppv))
        for pattern in convention.patterns():
            print("    %s" % pattern)
    print("# %d suffixes examined, %d conventions learned"
          % (result.suffixes_examined, len(result.conventions)))
    if args.save:
        with open(args.save, "w", encoding="utf-8") as handle:
            handle.write(conventions_to_json(result))
        print("# conventions written to %s" % args.save)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.hostnames is None:
        print("report requires --hostnames FILE", file=sys.stderr)
        return 2
    items = _read_training(args.hostnames)
    result = Hoiho(parallel=ParallelConfig.from_jobs(args.jobs)).run(items)
    print(render_result(result, group_by_suffix(items)))
    return 0


def _cmd_apply(args: argparse.Namespace) -> int:
    if args.conventions is None or args.hostnames is None:
        print("apply requires --conventions FILE and --hostnames FILE",
              file=sys.stderr)
        return 2
    with open(args.conventions, encoding="utf-8") as handle:
        result = conventions_from_json(handle.read())
    for hostname in _read_hostnames(args.hostnames):
        extracted = result.extract(hostname)
        print("%s\t%s" % (hostname,
                          extracted if extracted is not None else "-"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import render_report, write_report
    jobs = args.jobs if args.jobs != 1 else None
    report = write_report(args.output, jobs=jobs)
    print(render_report(report))
    print("# report written to %s" % args.output)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-hoiho`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "learn":
        return _cmd_learn(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "apply":
        return _cmd_apply(args)
    if args.command == "bench":
        return _cmd_bench(args)
    context = ExperimentContext(seed=args.seed, scale=Scale(args.scale),
                                parallel=ParallelConfig.from_jobs(args.jobs))
    names = sorted(_EXPERIMENTS) if args.command == "all" \
        else [args.command]
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 70 + "\n")
        print(_run_experiment(name, context))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
