"""Command-line driver: ``repro-hoiho <command> [options]``.

Experiment commands regenerate the paper's tables and figures::

    repro-hoiho figure5 --scale small --seed 2020
    repro-hoiho section5
    repro-hoiho all --scale tiny

Workflow commands run the learner on user data::

    repro-hoiho learn  --hostnames names.txt --save conv.json
    repro-hoiho report --hostnames names.txt
    repro-hoiho apply  --conventions conv.json --hostnames more.txt

Serving commands apply learned conventions at bulk rates through the
:mod:`repro.serve` subsystem (suffix-trie dispatch, chunked streaming,
live metrics)::

    repro-hoiho annotate --conventions conv.json --hostnames big.txt \
        --jobs 0 --format jsonl --out annotated.jsonl
    zcat ptr.gz | repro-hoiho annotate --conventions conv.json --hostnames -
    repro-hoiho serve --conventions conv.json < names.txt
    repro-hoiho serve-http --conventions conv.json --port 8080 --workers 4
    repro-hoiho loadgen --port 8080 --mode closed --requests 5000
    repro-hoiho serve-stats

``apply`` is a thin alias of ``annotate`` kept for compatibility; both
stream their input (constant memory on arbitrarily large files).

``serve-http`` runs the network annotation server (:mod:`repro.serve.http`):
keep-alive HTTP with single/batch annotate, ``/metrics``, health and
readiness probes, admin hot reload, and a pre-fork ``--workers`` pool
sharing one warmed dispatch index.  SIGTERM drains gracefully; SIGHUP
hot-reloads the conventions file.  ``loadgen`` drives a running server
in open or closed loop and prints a throughput/latency report
(``--loadgen-out`` saves it as JSON).

Shadow deployment (:mod:`repro.serve.shadow`): ``serve`` and
``serve-http`` take ``--shadow CANDIDATE.json`` to load a candidate
convention set side-by-side -- every request is annotated against both
sets, callers see only the primary's answers, and per-suffix
disagreement accumulates in the metrics.  ``repro-hoiho shadow-report``
renders the ledger from a running server (``--host``/``--port``) or
from saved ``--metrics`` snapshots; ``POST /admin/shadow/promote``
swaps the candidate in, gated by ``--promote-threshold`` when set::

    repro-hoiho serve-http --conventions live.json --shadow cand.json \
        --promote-threshold 0.01 --workers 4
    repro-hoiho shadow-report --port 8080

Hostname files carry one ``hostname asn`` pair per line for learn/report
(`#` comments allowed); for apply/annotate/serve, a bare hostname per
line suffices.

``--jobs N`` fans learning out over N worker processes (0 = one per
CPU); results are bit-identical to serial runs.  ``repro-hoiho bench``
runs the learner benchmark suite and refreshes ``BENCH_learner.json``.

``--retries N`` arms the fault-tolerant dispatcher on every parallel
fan-out (worker crashes rebuild the pool and replay in-flight work;
transient faults retry with deterministic backoff -- see
``docs/ROBUSTNESS.md``).  For ``annotate``, ``--checkpoint FILE``
records progress after every flushed chunk; rerunning an interrupted
command with the same flags resumes where it left off and produces
byte-identical output.

``--cache-dir DIR`` (or the ``REPRO_CACHE_DIR`` environment variable)
points at a persistent artifact store: experiment runs reuse generated
worlds/timelines and ``learn``/``report`` reuse learned conventions
across invocations; ``--no-cache`` disables the store for one run.
``repro-hoiho cache info`` and ``repro-hoiho cache clear`` inspect and
empty the store (``cache info --json`` for machine consumption, with
per-namespace entry counts and bytes; ``cache clear --namespace
suffixes`` flushes one namespace).  With a store attached, timeline
learning is incremental at suffix granularity -- only suffixes whose
training data changed since the cached snapshot relearn;
``--no-suffix-cache`` disables that layer for one run.

Observability (see ``docs/OBSERVABILITY.md``)::

    repro-hoiho run --scale small --trace-out trace.jsonl
    repro-hoiho trace summary trace.jsonl --top 15
    repro-hoiho serve-stats --metrics snap.json --format prom

``run`` executes the core pipeline end to end (world, timeline,
learned conventions).  ``--trace-out FILE`` -- honoured by ``run`` and
every experiment command -- records a span trace as JSONL and writes a
run manifest (config fingerprint, versions, per-stage durations,
metric snapshot) next to it; ``--manifest-out`` overrides the manifest
path.  ``trace summary`` renders a recorded trace: the per-stage tree
(worker-side snapshot and suffix spans included), the slowest
suffixes, and resilience/cache tables.  ``serve-stats --format prom``
emits any metrics snapshot in Prometheus text exposition format, and
``--json`` on ``serve-stats``/``cache info`` emits raw JSON.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Tuple

from repro.core.hoiho import Hoiho, HoihoConfig, HoihoResult
from repro.core.io import conventions_to_json
from repro.core.parallel import ParallelConfig
from repro.core.resilience import RetryPolicy
from repro.core.report import render_result
from repro.core.types import TrainingItem, group_by_suffix
from repro.eval import (
    ExperimentContext,
    Scale,
    ablation,
    appendix_a,
    figure5,
    figure6,
    section5,
    section7,
    sensitivity,
    table1,
    table2,
)
from repro.obs.manifest import write_manifest
from repro.obs.prom import to_prometheus
from repro.obs.summary import render_summary
from repro.obs.trace import NULL_TRACER, Tracer, load_trace
from repro.serve import AnnotationService, BulkAnnotator, iter_hostnames
from repro.serve.engine import Checkpoint, DEFAULT_CHUNK_SIZE, SINKS
from repro.serve.memo import DEFAULT_MEMO_SIZE
from repro.serve.metrics import render_snapshot
from repro.store import KIND_HOIHO, KINDS, ArtifactStore

_EXPERIMENTS = {
    "figure5": figure5,
    "figure6": figure6,
    "table1": table1,
    "table2": table2,
    "section5": section5,
    "section7": section7,
    "sensitivity": sensitivity,
    "appendix-a": appendix_a,
    "ablation": ablation,
}

_WORKFLOWS = ("learn", "report", "apply", "annotate", "serve",
              "serve-http", "loadgen", "serve-stats", "shadow-report",
              "watch", "slo-report", "bench", "cache", "run", "trace")

#: ``--format`` values that are renderers, not streaming sinks.
_RENDER_FORMATS = ("prom", "text")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hoiho",
        description="Reproduce 'Learning to Extract and Use ASNs in "
                    "Hostnames' (IMC 2020) on a synthetic Internet, or "
                    "run the learner on your own hostname data.")
    parser.add_argument("command",
                        choices=sorted(_EXPERIMENTS) + ["all"]
                        + list(_WORKFLOWS),
                        help="experiment to reproduce, or workflow verb")
    parser.add_argument("subcommand", nargs="?", default=None,
                        help="cache: 'info' (default) or 'clear'; "
                             "trace: 'summary'")
    parser.add_argument("target", nargs="?", default=None,
                        help="trace summary: the trace JSONL file to "
                             "render")
    parser.add_argument("--seed", type=int, default=2020,
                        help="master seed for the synthetic world")
    parser.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.SMALL.value,
                        help="world size (tiny/small/full)")
    parser.add_argument("--hostnames", metavar="FILE",
                        help="input file ('hostname asn' lines for "
                             "learn/report; bare hostnames for "
                             "apply/annotate; '-' reads stdin)")
    parser.add_argument("--save", metavar="FILE",
                        help="learn: write conventions JSON here")
    parser.add_argument("--conventions", metavar="FILE",
                        help="apply: conventions JSON from a prior learn")
    parser.add_argument("--shadow", metavar="FILE",
                        help="serve/serve-http: candidate conventions "
                             "JSON to annotate side-by-side (shadow "
                             "deployment; results never returned)")
    parser.add_argument("--promote-threshold", type=float, default=None,
                        metavar="FRACTION",
                        help="serve-http: refuse /admin/shadow/promote "
                             "while the merged disagreement fraction "
                             "exceeds this (default: no gate)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for learning "
                             "(1 = serial, 0 = one per CPU)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="extra attempts per parallel work item "
                             "(0 = fail fast; >0 arms worker-loss "
                             "recovery and transient-fault retry)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="base delay before the first retry "
                             "(doubles per attempt, deterministic)")
    parser.add_argument("--checkpoint", metavar="FILE",
                        help="annotate: progress sidecar; an "
                             "interrupted run rerun with the same "
                             "flags resumes where it left off")
    parser.add_argument("--output", metavar="FILE",
                        default="BENCH_learner.json",
                        help="bench: where to write the JSON report")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=os.environ.get("REPRO_CACHE_DIR"),
                        help="persistent artifact store for worlds, "
                             "timelines, and learned conventions "
                             "(default: $REPRO_CACHE_DIR, else off)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the artifact store for this run")
    parser.add_argument("--no-suffix-cache", action="store_true",
                        help="disable the per-suffix incremental cache "
                             "layer (whole-result caching still applies)")
    parser.add_argument("--namespace", choices=KINDS, metavar="KIND",
                        help="cache clear: restrict the sweep to one "
                             "namespace (%s)" % "/".join(KINDS))
    parser.add_argument("--chunk-size", type=int,
                        default=None, metavar="N",
                        help="annotate: hostnames per dispatched chunk "
                             "(default: adaptive ramp, %d fixed for "
                             "the serial path)" % DEFAULT_CHUNK_SIZE)
    parser.add_argument("--memo-size", type=int,
                        default=DEFAULT_MEMO_SIZE, metavar="N",
                        help="annotate/serve: hostname-memo capacity "
                             "(0 disables memoization; default %d)"
                             % DEFAULT_MEMO_SIZE)
    parser.add_argument("--format",
                        choices=sorted(list(SINKS) + list(_RENDER_FORMATS)),
                        default="tsv", dest="sink_format",
                        help="annotate: output format (default tsv); "
                             "serve-stats: 'prom' or 'text' rendering "
                             "of a --metrics snapshot")
    parser.add_argument("--out", metavar="FILE", default="-",
                        help="annotate: output destination "
                             "(default '-' = stdout)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="serve/serve-http: write a metrics "
                             "snapshot JSON here on exit (serve also "
                             "flushes it on SIGTERM/SIGINT)")
    parser.add_argument("--metrics", metavar="FILE", action="append",
                        help="serve-stats: render this metrics "
                             "snapshot instead of the bench section "
                             "(repeat to merge several additively)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve-http/loadgen: bind/connect address "
                             "(default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080, metavar="N",
                        help="serve-http/loadgen: TCP port (0 lets "
                             "the kernel pick; default 8080)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="serve-http: pre-fork worker processes "
                             "(1 = single process; default 1)")
    parser.add_argument("--max-body", type=int,
                        default=None, metavar="BYTES",
                        help="serve-http: reject request bodies larger "
                             "than this with 413 (default 8 MiB)")
    parser.add_argument("--max-inflight", type=int,
                        default=None, metavar="N",
                        help="serve-http: per-worker bound on "
                             "concurrent annotation requests; excess "
                             "gets 429 (default 64)")
    parser.add_argument("--drain-grace", type=float, default=0.0,
                        metavar="SECONDS",
                        help="serve-http: keep accepting (readyz 503) "
                             "this long after SIGTERM so load "
                             "balancers observe the drain (default 0)")
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed",
                        help="loadgen: closed loop (capacity) or open "
                             "loop (fixed offered rate)")
    parser.add_argument("--concurrency", type=int, default=4,
                        metavar="N",
                        help="loadgen: client connections/threads "
                             "(default 4)")
    parser.add_argument("--requests", type=int, default=1000,
                        metavar="N",
                        help="loadgen: total requests to issue "
                             "(default 1000)")
    parser.add_argument("--rate", type=float, default=100.0,
                        metavar="PER_SECOND",
                        help="loadgen open loop: offered request rate "
                             "(default 100/s)")
    parser.add_argument("--batch-size", type=int, default=1,
                        metavar="N",
                        help="loadgen: hostnames per request (1 = "
                             "POST /annotate, else /annotate/batch)")
    parser.add_argument("--loadgen-out", metavar="FILE",
                        help="loadgen: also write the report as JSON "
                             "here")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="run/experiments: record a span trace "
                             "here (JSONL) and write a run manifest "
                             "next to it; serve-http: JSONL sink for "
                             "--trace-sample request spans")
    parser.add_argument("--access-log", metavar="PATH",
                        help="serve-http: structured JSON access log, "
                             "one line per request ('-' = stderr; "
                             "default off)")
    parser.add_argument("--trace-sample", type=int, default=0,
                        metavar="N",
                        help="serve-http: trace 1-in-N requests as "
                             "spans to --trace-out (0 = off)")
    parser.add_argument("--history", metavar="FILE",
                        help="serve-http: append timestamped merged "
                             "metrics snapshots here (JSONL; default "
                             "<cache-dir>/history/serve-http.jsonl "
                             "when a cache dir is configured); "
                             "shadow-report/slo-report: read this "
                             "history instead of a live server")
    parser.add_argument("--history-interval", type=float, default=10.0,
                        metavar="SECONDS",
                        help="serve-http: seconds between history "
                             "appends (default 10)")
    parser.add_argument("--slo", metavar="FILE",
                        help="slo-report: declarative SLO target JSON "
                             "(see docs/OBSERVABILITY.md)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="watch: refresh period (default 2)")
    parser.add_argument("--iterations", type=int, default=0,
                        metavar="N",
                        help="watch: stop after N frames (0 = until "
                             "interrupted)")
    parser.add_argument("--manifest-out", metavar="FILE",
                        help="override the manifest path (default: "
                             "<trace-out stem>.manifest.json)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="trace summary: slowest-suffix rows to "
                             "show (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="cache info / serve-stats: emit raw JSON "
                             "instead of the human rendering")
    return parser


def _resolve_policies(args: argparse.Namespace) -> None:
    """Validate ``--jobs``/``--retries``/``--retry-backoff`` once, up
    front, and attach the resulting :class:`ParallelConfig` and
    :class:`RetryPolicy` (or ``None``) to ``args`` for every command.

    Raises ``ValueError`` on bad values (``--jobs -1``,
    ``--retries -1``); :func:`main` turns that into exit code 2 instead
    of a traceback."""
    args.parallel = ParallelConfig.from_jobs(args.jobs)
    args.retry = RetryPolicy.from_flags(args.retries,
                                        backoff=args.retry_backoff)


def _store_from_args(args: argparse.Namespace) -> Optional[ArtifactStore]:
    """The artifact store the flags select, or ``None`` when caching
    is off (no ``--cache-dir``/``REPRO_CACHE_DIR``, or ``--no-cache``)."""
    if args.no_cache or not args.cache_dir:
        return None
    return ArtifactStore(args.cache_dir)


def _read_training(path: str) -> List[TrainingItem]:
    items: List[TrainingItem] = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 2:
                print("skipping malformed line: %r" % raw,
                      file=sys.stderr)
                continue
            items.append(TrainingItem(hostname=fields[0],
                                      train_asn=int(fields[1])))
    return items


def _run_experiment(name: str, context: ExperimentContext) -> str:
    module = _EXPERIMENTS[name]
    result = module.run(context)
    return module.render(result)


def _learn_items(items: List[TrainingItem],
                 args: argparse.Namespace) -> HoihoResult:
    """Learn conventions for ``items``, via the artifact store if on.

    The store key is the full training data plus the learner config,
    so any change to either re-learns; worker count is deliberately
    not keyed (parallel results are bit-identical to serial).
    """
    store = _store_from_args(args)
    payload = {"kind": "learn-cli",
               "items": [(it.hostname, it.train_asn) for it in items],
               "hoiho_config": HoihoConfig()}
    if store is not None:
        cached = store.get(KIND_HOIHO, payload)
        if cached is not None:
            return cached
    suffix_store = None if args.no_suffix_cache else store
    result = Hoiho(parallel=args.parallel, retry=args.retry,
                   store=suffix_store).run(items)
    if store is not None:
        store.put(KIND_HOIHO, payload, result)
    return result


def _cmd_learn(args: argparse.Namespace) -> int:
    if args.hostnames is None:
        print("learn requires --hostnames FILE", file=sys.stderr)
        return 2
    items = _read_training(args.hostnames)
    result = _learn_items(items, args)
    for suffix in sorted(result.conventions):
        convention = result.conventions[suffix]
        print("%s [%s] atp=%d ppv=%.2f" % (suffix,
                                           convention.nc_class.value,
                                           convention.score.atp,
                                           convention.score.ppv))
        for pattern in convention.patterns():
            print("    %s" % pattern)
    print("# %d suffixes examined, %d conventions learned"
          % (result.suffixes_examined, len(result.conventions)))
    if args.save:
        with open(args.save, "w", encoding="utf-8") as handle:
            handle.write(conventions_to_json(result))
        print("# conventions written to %s" % args.save)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.hostnames is None:
        print("report requires --hostnames FILE", file=sys.stderr)
        return 2
    items = _read_training(args.hostnames)
    result = _learn_items(items, args)
    print(render_result(result, group_by_suffix(items)))
    return 0


def _cmd_annotate(args: argparse.Namespace) -> int:
    """Bulk annotation through :mod:`repro.serve` (and the ``apply``
    alias): streaming input, chunked ``--jobs`` fan-out, TSV/JSONL
    sinks.  Memory stays bounded by the chunk window however large the
    input is."""
    if args.sink_format not in SINKS:
        print("%s --format must be a sink format (%s), not %r"
              % (args.command, "/".join(sorted(SINKS)), args.sink_format),
              file=sys.stderr)
        return 2
    if args.conventions is None or args.hostnames is None:
        print("%s requires --conventions FILE and --hostnames FILE "
              "('-' = stdin)" % args.command, file=sys.stderr)
        return 2
    if args.checkpoint and args.out == "-":
        print("--checkpoint requires --out FILE (stdout cannot be "
              "resumed)", file=sys.stderr)
        return 2
    if args.memo_size < 0:
        print("--memo-size must be >= 0, got %d" % args.memo_size,
              file=sys.stderr)
        return 2
    service = AnnotationService.from_json_file(args.conventions,
                                               memo_size=args.memo_size)
    service.warm()
    annotator = BulkAnnotator(service,
                              parallel=args.parallel,
                              chunk_size=args.chunk_size,
                              retry=args.retry)
    checkpoint = Checkpoint(args.checkpoint) if args.checkpoint else None
    source = sys.stdin if args.hostnames == "-" \
        else open(args.hostnames, encoding="utf-8")
    resuming = checkpoint is not None and checkpoint.path.exists()
    sink = sys.stdout if args.out == "-" \
        else _open_sink(args.out, resuming=resuming)
    try:
        summary = annotator.annotate_to(iter_hostnames(source), sink,
                                        fmt=args.sink_format,
                                        checkpoint=checkpoint)
    finally:
        if source is not sys.stdin:
            source.close()
        if sink is not sys.stdout:
            sink.close()
    tail = ", %d dead-lettered" % summary["errors"] \
        if summary["errors"] else ""
    print("# %d hostname(s): %d annotated, %d unannotated%s"
          % (summary["requests"], summary["annotated"],
             summary["misses"], tail), file=sys.stderr)
    return 0


def _open_sink(path: str, resuming: bool):
    """Open the annotate output file: truncate on a fresh run, but keep
    existing bytes when a checkpoint may resume into them ('r+' so the
    engine can truncate back to the last durable line itself)."""
    if resuming and os.path.exists(path):
        return open(path, "r+", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _cmd_apply(args: argparse.Namespace) -> int:
    """Thin alias: ``apply`` is ``annotate`` with the historical
    defaults (TSV to stdout)."""
    return _cmd_annotate(args)


def _write_metrics_snapshot(path: str, service: AnnotationService) -> None:
    import json as _json
    with open(path, "w", encoding="utf-8") as handle:
        _json.dump(service.stats(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_serve(args: argparse.Namespace) -> int:
    """Line-oriented serving loop: hostnames in on stdin, annotations
    out on stdout (one TSV line per request, flushed), metrics summary
    on stderr at EOF.  SIGTERM/SIGINT also flush ``--metrics-out``
    before exiting -- an interrupted session keeps its numbers."""
    import signal as _signal

    if args.conventions is None:
        print("serve requires --conventions FILE", file=sys.stderr)
        return 2
    if args.memo_size < 0:
        print("--memo-size must be >= 0, got %d" % args.memo_size,
              file=sys.stderr)
        return 2
    service = AnnotationService.from_json_file(args.conventions,
                                               memo_size=args.memo_size)
    warmed = service.warm()
    if args.shadow:
        from repro.serve.shadow import ShadowService, render_shadow_report
        service = ShadowService(service)
        loaded = service.load_candidate_file(args.shadow)
        print("# shadowing %d candidate convention(s) from %s"
              % (loaded, args.shadow), file=sys.stderr)
    print("# serving %d convention(s) from %s"
          % (warmed, args.conventions), file=sys.stderr)

    def _render_exit_stats() -> None:
        if args.metrics_out:
            _write_metrics_snapshot(args.metrics_out, service)
        if args.shadow:
            print(render_shadow_report(service.report()), file=sys.stderr)
        print(service.metrics.render(), file=sys.stderr)

    def _flush_and_exit(signum: int, frame: object) -> None:
        # PEP 475 auto-retries the blocked stdin read after this
        # handler returns, so a "stop" flag would never be seen;
        # flush here and leave directly instead.
        _render_exit_stats()
        sys.exit(0)

    previous = [_signal.signal(_signal.SIGTERM, _flush_and_exit),
                _signal.signal(_signal.SIGINT, _flush_and_exit)]
    try:
        for hostname in iter_hostnames(sys.stdin):
            asn = service.annotate_one(hostname)
            print("%s\t%s" % (hostname, asn if asn is not None else "-"),
                  flush=True)
    finally:
        _signal.signal(_signal.SIGTERM, previous[0])
        _signal.signal(_signal.SIGINT, previous[1])
    _render_exit_stats()
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    """The network annotation server (see :mod:`repro.serve.http`)."""
    from repro.serve.http import HttpConfig, serve_http

    if args.conventions is None:
        print("serve-http requires --conventions FILE", file=sys.stderr)
        return 2
    if args.memo_size < 0:
        print("--memo-size must be >= 0, got %d" % args.memo_size,
              file=sys.stderr)
        return 2
    history = args.history
    if history is None and args.cache_dir and not args.no_cache:
        # The tentpole default: persisted telemetry lives with the
        # other durable artifacts, so successive lifetimes accumulate
        # into one comparable history.
        history = os.path.join(args.cache_dir, "history",
                               "serve-http.jsonl")
    config = HttpConfig(host=args.host, port=args.port,
                        workers=args.workers,
                        drain_grace=args.drain_grace,
                        conventions=args.conventions,
                        shadow=args.shadow,
                        promote_threshold=args.promote_threshold,
                        metrics_out=args.metrics_out,
                        access_log=args.access_log,
                        trace_sample=args.trace_sample,
                        trace_out=args.trace_out,
                        history=history,
                        history_interval=args.history_interval)
    if args.max_body is not None:
        config.max_body = args.max_body
    if args.max_inflight is not None:
        config.max_inflight = args.max_inflight
    try:
        config.validate()
    except ValueError as exc:
        print("repro-hoiho serve-http: %s" % exc, file=sys.stderr)
        return 2
    service = AnnotationService.from_json_file(args.conventions,
                                               memo_size=args.memo_size)
    warmed = service.warm()
    if args.shadow:
        # Wrap and load before serve_http forks so every worker
        # inherits the warmed candidate alongside the primary.
        from repro.serve.shadow import ShadowService
        shadow = ShadowService(service)
        loaded = shadow.load_candidate_file(args.shadow)
        service = shadow
        print("# shadowing %d candidate convention(s) from %s"
              % (loaded, args.shadow), file=sys.stderr)

    def _ready(port: int) -> None:
        print("# serving %d convention(s) on http://%s:%d (%d worker%s)"
              % (warmed, args.host, port, args.workers,
                 "" if args.workers == 1 else "s"),
              file=sys.stderr, flush=True)

    return serve_http(service, config, ready=_ready)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running ``serve-http`` instance and report throughput
    and latency percentiles.  The hostname stream is ``--hostnames``
    (bare hostnames) or, by default, the bench's deterministic Zipf
    stream -- the same workload the in-process serve bench measures,
    so the numbers are comparable."""
    import json as _json

    from repro.serve.loadgen import LoadGenConfig, run_loadgen

    if args.hostnames:
        source = sys.stdin if args.hostnames == "-" \
            else open(args.hostnames, encoding="utf-8")
        try:
            hostnames = list(iter_hostnames(source))
        finally:
            if source is not sys.stdin:
                source.close()
        if not hostnames:
            print("loadgen: no hostnames in %s" % args.hostnames,
                  file=sys.stderr)
            return 2
    else:
        from repro.bench import zipf_hostnames
        hostnames = zipf_hostnames()
    config = LoadGenConfig(host=args.host, port=args.port,
                           mode=args.mode, requests=args.requests,
                           concurrency=args.concurrency, rate=args.rate,
                           batch_size=args.batch_size)
    try:
        config.validate()
    except ValueError as exc:
        print("repro-hoiho loadgen: %s" % exc, file=sys.stderr)
        return 2
    result = run_loadgen(config, hostnames)
    print(_json.dumps(result, indent=2, sort_keys=True))
    if args.loadgen_out:
        with open(args.loadgen_out, "w", encoding="utf-8") as handle:
            _json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    """Render a saved metrics snapshot (``--metrics FILE``, repeatable
    -- several files merge additively via ``merge_snapshot``, e.g. the
    per-worker flushes of a pre-fork server) or the ``serve`` section
    of the bench report (``--output``, default ``BENCH_learner.json``).
    A ``--metrics`` snapshot additionally renders as Prometheus text
    exposition (``--format prom``) or raw JSON (``--json``)."""
    import json as _json
    if args.metrics:
        snapshots = []
        for path in args.metrics:
            try:
                with open(path, encoding="utf-8") as handle:
                    snapshots.append(_json.load(handle))
            except (OSError, ValueError) as exc:
                print("cannot read metrics snapshot %s: %s"
                      % (path, exc), file=sys.stderr)
                return 2
        if len(snapshots) == 1:
            # One file renders verbatim, extras (memo, fused_plans)
            # included; merging would drop non-instrument keys.
            snapshot = snapshots[0]
        else:
            from repro.obs.metrics import MetricsRegistry
            merged = MetricsRegistry()
            try:
                for payload in snapshots:
                    merged.merge_snapshot(payload)
            except ValueError as exc:
                print("cannot merge metrics snapshots: %s" % exc,
                      file=sys.stderr)
                return 2
            snapshot = merged.snapshot()
        if args.json:
            print(_json.dumps(snapshot, indent=2, sort_keys=True))
        elif args.sink_format == "prom":
            print(to_prometheus(snapshot), end="")
        else:
            print(render_snapshot(snapshot))
        return 0
    if args.sink_format == "prom":
        print("serve-stats --format prom requires --metrics FILE "
              "(the bench serve section is not a metrics snapshot)",
              file=sys.stderr)
        return 2
    from repro.bench import render_serve_section
    try:
        with open(args.output, encoding="utf-8") as handle:
            report = _json.load(handle)
    except (OSError, ValueError) as exc:
        print("cannot read bench report %s: %s" % (args.output, exc),
              file=sys.stderr)
        return 2
    section = report.get("serve")
    if not section:
        print("no serve section in %s (run `make annotate-bench`)"
              % args.output, file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(section, indent=2, sort_keys=True))
        return 0
    print(render_serve_section(section))
    return 0


def _cmd_shadow_report(args: argparse.Namespace) -> int:
    """The shadow disagreement ledger, three ways: live from a running
    ``serve-http`` (``GET /admin/shadow/report`` on ``--host``/
    ``--port``), offline by merging saved ``--metrics`` snapshots
    (e.g. a pre-fork server's per-worker flushes, or the
    ``--metrics-out`` file it writes at shutdown), or across time from
    the persisted ``--history`` file -- one report per entry, so
    successive candidates compare across server lifetimes."""
    import json as _json

    from repro.serve.shadow import merge_shadow_reports, \
        render_shadow_report

    if args.history:
        return _render_shadow_history(args)
    if args.metrics:
        snapshots = []
        for path in args.metrics:
            try:
                with open(path, encoding="utf-8") as handle:
                    snapshots.append(_json.load(handle))
            except (OSError, ValueError) as exc:
                print("cannot read metrics snapshot %s: %s"
                      % (path, exc), file=sys.stderr)
                return 2
        report = merge_shadow_reports(snapshots)
    else:
        import http.client
        try:
            conn = http.client.HTTPConnection(args.host, args.port,
                                              timeout=10.0)
            try:
                conn.request("GET", "/admin/shadow/report")
                response = conn.getresponse()
                body = response.read()
            finally:
                conn.close()
        except OSError as exc:
            print("cannot reach http://%s:%d: %s (is serve-http "
                  "running? or pass --metrics FILE)"
                  % (args.host, args.port, exc), file=sys.stderr)
            return 2
        if response.status != 200:
            print("GET /admin/shadow/report returned %d: %s"
                  % (response.status, body.decode("utf-8", "replace")),
                  file=sys.stderr)
            return 1
        report = _json.loads(body.decode("utf-8"))
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(render_shadow_report(report, top=args.top))
    return 0


def _render_shadow_history(args: argparse.Namespace) -> int:
    """``shadow-report --history``: one ledger row per history entry."""
    import json as _json
    from datetime import datetime, timezone

    from repro.obs.timeseries import HistoryStore
    from repro.serve.shadow import shadow_report_from_snapshot

    entries = HistoryStore(args.history).entries()
    if not entries:
        print("no history entries in %s" % args.history, file=sys.stderr)
        return 1
    reports = [dict(ts=entry.get("ts"),
                    **shadow_report_from_snapshot(
                        entry.get("snapshot") or {}))
               for entry in entries]
    if args.json:
        print(_json.dumps(reports, indent=2, sort_keys=True))
        return 0
    lines = ["shadow history: %d entr%s from %s"
             % (len(reports), "y" if len(reports) == 1 else "ies",
                args.history),
             "  %-20s %-8s %-10s %-9s %-9s %s"
             % ("ts", "active", "requests", "disagree", "fraction",
                "candidate")]
    for report in reports:
        ts = report.get("ts")
        stamp = (datetime.fromtimestamp(ts, tz=timezone.utc)
                 .strftime("%Y-%m-%dT%H:%M:%SZ") if ts else "-")
        lines.append("  %-20s %-8s %-10d %-9d %-9s %s"
                     % (stamp,
                        "yes" if report.get("active") else "no",
                        report.get("requests", 0),
                        report.get("disagreements", 0),
                        "%.2f%%" % (100.0
                                    * report.get("disagreement_fraction",
                                                 0.0)),
                        report.get("candidate_suffixes")
                        if report.get("candidate_suffixes") is not None
                        else "-"))
    print("\n".join(lines))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """A refreshing terminal dashboard over ``GET /admin/status``.

    Clears the screen between frames on a TTY; plain sequential frames
    otherwise (so piping to a file keeps every sample)."""
    import http.client
    import json as _json

    frame = 0
    while True:
        try:
            conn = http.client.HTTPConnection(args.host, args.port,
                                              timeout=5.0)
            try:
                conn.request("GET", "/admin/status")
                response = conn.getresponse()
                body = response.read()
            finally:
                conn.close()
        except OSError as exc:
            print("cannot reach http://%s:%d: %s (is serve-http "
                  "running?)" % (args.host, args.port, exc),
                  file=sys.stderr)
            return 1
        if response.status != 200:
            print("GET /admin/status returned %d" % response.status,
                  file=sys.stderr)
            return 1
        status = _json.loads(body.decode("utf-8"))
        frame += 1
        if sys.stdout.isatty():
            sys.stdout.write("\x1b[2J\x1b[H")
        print(_render_watch_frame(status, args.host, args.port, frame,
                                  args.interval))
        sys.stdout.flush()
        if args.iterations and frame >= args.iterations:
            return 0
        time.sleep(max(args.interval, 0.1))


def _render_watch_frame(status: dict, host: str, port: int,
                        frame: int, interval: float) -> str:
    window = status.get("window") or {}
    latency = window.get("latency") or {}
    ages = status.get("snapshot_age_seconds") or {}
    lines = [
        "repro-hoiho watch -- http://%s:%d  (frame %d, %.1fs refresh)"
        % (host, port, frame, interval),
        "  state %-9s uptime %-9s workers %-3d answering-worker %-3s "
        "inflight %d"
        % (status.get("status", "?"),
           "%.0fs" % status.get("uptime_seconds", 0.0),
           status.get("workers", 1),
           status.get("worker", "?"),
           status.get("inflight", 0)),
        "  window %.0fs of %.0fs x %d: %d requests  %.1f req/s  "
        "errors %d (%.2f%%)"
        % (window.get("covered_seconds", 0.0),
           window.get("width_seconds", 0.0),
           window.get("count", 0),
           window.get("requests", 0),
           window.get("requests_per_second", 0.0),
           window.get("errors", 0),
           100.0 * window.get("error_rate", 0.0)),
    ]
    if latency:
        lines.append("  latency " + "  ".join(
            "%s %.3fms" % (key, latency[key] * 1e3)
            for key in sorted(latency)))
    else:
        lines.append("  latency (no samples in window)")
    if ages:
        lines.append("  snapshot age " + "  ".join(
            "w%s %.1fs" % (worker, ages[worker])
            for worker in sorted(ages, key=int)))
    return "\n".join(lines)


def _cmd_slo_report(args: argparse.Namespace) -> int:
    """Evaluate a declarative SLO target against a persisted history;
    exit 0 when every check holds, 1 on breach (CI-gateable)."""
    import json as _json

    from repro.obs.slo import SloTarget, evaluate_history, \
        render_slo_report
    from repro.obs.timeseries import HistoryStore

    history = args.history
    if history is None and args.cache_dir and not args.no_cache:
        history = os.path.join(args.cache_dir, "history",
                               "serve-http.jsonl")
    if not history:
        print("slo-report requires --history FILE (or a --cache-dir "
              "with a serving history)", file=sys.stderr)
        return 2
    if not args.slo:
        print("slo-report requires --slo FILE (the target JSON)",
              file=sys.stderr)
        return 2
    try:
        target = SloTarget.from_file(args.slo)
    except (OSError, ValueError, TypeError) as exc:
        print("cannot load SLO target %s: %s" % (args.slo, exc),
              file=sys.stderr)
        return 2
    entries = HistoryStore(history).entries()
    if not entries:
        print("no history entries in %s" % history, file=sys.stderr)
        return 2
    report = evaluate_history(entries, target)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_slo_report(report))
    return 0 if report["ok"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import render_report, write_report
    jobs = args.jobs if args.jobs != 1 else None
    report = write_report(args.output, jobs=jobs)
    print(render_report(report))
    print("# report written to %s" % args.output)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if not args.cache_dir:
        print("cache requires --cache-dir DIR (or REPRO_CACHE_DIR)",
              file=sys.stderr)
        return 2
    store = ArtifactStore(args.cache_dir)
    action = args.subcommand or "info"
    if action == "clear":
        removed = store.clear(kind=args.namespace)
        scope = " (namespace %s)" % args.namespace if args.namespace else ""
        print("cleared %d cached artifact(s) from %s%s"
              % (removed, store.root, scope))
        return 0
    if action != "info":
        print("unknown cache subcommand %r (expected info or clear)"
              % action, file=sys.stderr)
        return 2
    info = store.info()
    if args.json:
        import json as _json
        print(_json.dumps(info, indent=2, sort_keys=True))
        return 0
    print("artifact store: %s (schema v%s)" % (info["root"], info["schema"]))
    kinds = info["kinds"]
    if not info["entries"]:
        print("  empty")
        return 0
    # Human rendering shows only populated namespaces; --json reports
    # every registered one (including zeros).
    for kind in sorted(kinds):
        entry = kinds[kind]
        if not entry["entries"]:
            continue
        print("  %-10s %4d entr%s  %10d bytes"
              % (kind, entry["entries"],
                 "y" if entry["entries"] == 1 else "ies", entry["bytes"]))
    print("  total      %4d entries  %10d bytes"
          % (info["entries"], info["bytes"]))
    return 0


def _tracer_from_args(args: argparse.Namespace):
    """The tracer ``--trace-out`` selects (the no-op one without it)."""
    return Tracer(path=args.trace_out) if args.trace_out else NULL_TRACER


def _finish_trace(context: ExperimentContext, args: argparse.Namespace,
                  wall_seconds: float) -> None:
    """Close the trace sink and write the run manifest next to it.

    The tracer must be closed *before* the manifest is built so any
    still-open spans contribute their final durations to the export.
    """
    tracer = context.tracer
    if not tracer.enabled:
        return
    tracer.close()
    manifest_path = args.manifest_out or \
        os.path.splitext(args.trace_out)[0] + ".manifest.json"
    write_manifest(manifest_path,
                   context.manifest(wall_seconds,
                                    trace_path=args.trace_out))
    print("# trace written to %s" % args.trace_out, file=sys.stderr)
    print("# manifest written to %s" % manifest_path, file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    """The whole core pipeline, end to end: generate (or reload) the
    world, build every training-set snapshot, learn conventions for all
    of them.  The canonical traced entry point -- each stage is a
    top-level span, so the manifest's per-stage durations account for
    the run's full wall time."""
    context = ExperimentContext(seed=args.seed, scale=Scale(args.scale),
                                parallel=args.parallel,
                                store=_store_from_args(args),
                                retry=args.retry,
                                tracer=_tracer_from_args(args),
                                suffix_cache=not args.no_suffix_cache)
    started = time.perf_counter()
    timeline = context.timeline
    learned = context.learn_timeline()
    wall = time.perf_counter() - started
    conventions = sum(len(result.conventions)
                      for result in learned.values())
    items = sum(len(training_set.items) for training_set in timeline)
    print("run complete: %d training set(s), %d item(s), "
          "%d convention(s) learned in %.2fs"
          % (len(timeline), items, conventions, wall))
    _finish_trace(context, args, wall)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a recorded trace file (``trace summary FILE``)."""
    action = args.subcommand or "summary"
    if action != "summary":
        print("unknown trace subcommand %r (expected summary)"
              % action, file=sys.stderr)
        return 2
    if not args.target:
        print("usage: repro-hoiho trace summary FILE [--top N]",
              file=sys.stderr)
        return 2
    try:
        records = load_trace(args.target)
    except (OSError, ValueError) as exc:
        print("cannot read trace %s: %s" % (args.target, exc),
              file=sys.stderr)
        return 2
    print(render_summary(records, top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-hoiho`` console script."""
    args = _build_parser().parse_args(argv)
    try:
        _resolve_policies(args)
    except ValueError as exc:
        print("repro-hoiho: %s" % exc, file=sys.stderr)
        return 2
    if args.command == "learn":
        return _cmd_learn(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "apply":
        return _cmd_apply(args)
    if args.command == "annotate":
        return _cmd_annotate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-http":
        return _cmd_serve_http(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "serve-stats":
        return _cmd_serve_stats(args)
    if args.command == "shadow-report":
        return _cmd_shadow_report(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "slo-report":
        return _cmd_slo_report(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    context = ExperimentContext(seed=args.seed, scale=Scale(args.scale),
                                parallel=args.parallel,
                                store=_store_from_args(args),
                                retry=args.retry,
                                tracer=_tracer_from_args(args),
                                suffix_cache=not args.no_suffix_cache)
    names = sorted(_EXPERIMENTS) if args.command == "all" \
        else [args.command]
    started = time.perf_counter()
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 70 + "\n")
        print(_run_experiment(name, context))
    _finish_trace(context, args, time.perf_counter() - started)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
