"""Persistent content-addressed artifact store.

Every expensive pipeline artifact -- a generated :class:`World`, a
timeline of training sets, a learned :class:`HoihoResult` -- is a pure
function of its configuration.  The store exploits that: artifacts are
keyed by a **fingerprint**, the SHA-256 of a canonical JSON rendering of
everything the artifact depends on (master seed, world/scale config,
snapshot spec, learner config) plus a schema version.  Any config
change, however small, changes the fingerprint, so stale artifacts are
never served -- they are simply never looked up again (invalidation by
construction).

Layout on disk::

    <root>/
      worlds/<fingerprint>.pkl        pickled artifact
      worlds/<fingerprint>.json       the fingerprint payload, for humans
      timelines/...
      hoiho/...                       whole-result learned conventions
      suffixes/...                    per-suffix learned conventions
                                      (content-addressed by training set
                                      + learner config; the incremental
                                      relearning substrate)

``repro-hoiho cache info`` and ``repro-hoiho cache clear`` operate on a
store; :class:`~repro.eval.context.ExperimentContext` consults one when
constructed with ``store=``.  Bump :data:`STORE_SCHEMA_VERSION` whenever
the pickled representation of an artifact changes shape.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

logger = logging.getLogger(__name__)

#: Version of the pickled artifact layouts and the fingerprint keying
#: scheme; part of every fingerprint.  v2: dict keys are type-tagged
#: tokens and the payload nests beside the schema version.
STORE_SCHEMA_VERSION = 2

#: Artifact kinds the store recognises (a kind is just a subdirectory).
KIND_WORLD = "worlds"
KIND_TIMELINE = "timelines"
KIND_HOIHO = "hoiho"
KIND_SUFFIX = "suffixes"

#: Every registered namespace, in display order.  Maintenance methods
#: (:meth:`ArtifactStore.entries`, :meth:`ArtifactStore.info`,
#: :meth:`ArtifactStore.clear`, :meth:`ArtifactStore.stale_tmp`) derive
#: their walk from this tuple -- a namespace that is not registered
#: here cannot be written at all (:meth:`ArtifactStore.path_for`
#: rejects it), so a new artifact kind can never silently be omitted
#: from info/clear/stale-tmp reaping.
KINDS = (KIND_WORLD, KIND_TIMELINE, KIND_HOIHO, KIND_SUFFIX)


def _key_token(key: object) -> str:
    """A JSON dict key that is both *sortable* and *type-faithful*.

    Plain ``str(key)`` would alias ``{1: x}`` with ``{"1": x}`` (two
    distinct configs sharing a cache entry), and ``sorted(items())`` on
    mixed-type keys raises ``TypeError``.  Prefixing every key with a
    type tag fixes both: tokens are plain strings (always sortable) and
    keys of different types can never collide.
    """
    if isinstance(key, str):
        return "s:" + key
    if isinstance(key, bool):  # before int: bool is an int subclass
        return "b:%r" % key
    if isinstance(key, int):
        return "i:%d" % key
    if isinstance(key, float):
        return "f:%r" % key
    if key is None:
        return "n:"
    return "r:" + repr(key)


def _canonical(value: object) -> object:
    """Make ``value`` JSON-stable: dataclasses become sorted dicts,
    tuples become lists, sets become sorted lists, and dict keys become
    type-tagged tokens sorted by their stringified form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {token: _canonical(item)
                for token, item in sorted(
                    (_key_token(k), v) for k, v in value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint(payload: Mapping) -> str:
    """SHA-256 of the canonical JSON of ``payload`` + schema version.

    The payload nests under its own key so none of its entries can
    collide with the envelope -- a payload key named ``"schema"`` must
    not overwrite the store schema version, or version bumps would stop
    invalidating exactly the entries that carry that key.
    """
    keyed = {"schema": STORE_SCHEMA_VERSION,
             "payload": _canonical(payload)}
    text = json.dumps(keyed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class StoreStats:
    """Hit/miss counters for one store instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ArtifactStore:
    """A content-addressed pickle store rooted at a directory.

    The store is safe to share across runs and configurations: a lookup
    with a payload that does not exactly reproduce a prior ``put``'s
    payload misses.  Corrupt or unreadable entries read as misses (and
    the offending files are ignored, not deleted).
    """

    def __init__(self, root: Union[str, Path], tracer=None,
                 metrics=None) -> None:
        from repro.obs.trace import NULL_TRACER
        self.root = Path(root)
        self.stats = StoreStats()
        # Attachable after construction too (ExperimentContext wires
        # its tracer into a store the CLI built earlier).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    # -- keying ------------------------------------------------------------

    @staticmethod
    def fingerprint(payload: Mapping) -> str:
        """Expose :func:`fingerprint` on the class for convenience."""
        return fingerprint(payload)

    def path_for(self, kind: str, payload: Mapping) -> Path:
        """Where the artifact for ``payload`` lives (existing or not).

        ``kind`` must be a registered namespace (:data:`KINDS`) --
        writing into an unregistered subdirectory would create entries
        invisible to :meth:`info`/:meth:`clear`.
        """
        _check_kind(kind)
        return self.root / kind / (fingerprint(payload) + ".pkl")

    # -- access ------------------------------------------------------------

    def contains(self, kind: str, payload: Mapping) -> bool:
        """True when an artifact for ``payload`` is on disk."""
        return self.path_for(kind, payload).is_file()

    def get(self, kind: str, payload: Mapping) -> Optional[object]:
        """The stored artifact, or ``None`` on miss/corruption."""
        path = self.path_for(kind, payload)
        with self.tracer.span("store.get", kind=kind,
                              fingerprint=path.stem) as span:
            artifact = self._read(path)
            hit = artifact is not None
            span.set(hit=hit)
            if hit:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
            if self.metrics is not None:
                name = "store_hits" if hit else "store_misses"
                self.metrics.counter(name).inc()
        return artifact

    def _read(self, path: Path) -> Optional[object]:
        if not path.is_file():
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception as exc:  # corrupt entry reads as a miss
            logger.warning("store: unreadable entry %s (%s)", path, exc)
            return None

    def put(self, kind: str, payload: Mapping, artifact: object) -> Path:
        """Persist ``artifact`` under ``payload``'s fingerprint.

        Both the pickle and its ``.json`` sidecar go through a
        temporary file + atomic rename, so a crashed run never leaves a
        half-written pickle *or* a truncated sidecar next to a valid
        one.  Orphaned temporaries from crashes are reaped by
        :meth:`clear` and reported by :meth:`info`.
        """
        path = self.path_for(kind, payload)
        with self.tracer.span("store.put", kind=kind,
                              fingerprint=path.stem):
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".pkl.tmp.%d" % os.getpid())
            try:
                with open(tmp, "wb") as handle:
                    pickle.dump(artifact, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            finally:
                if tmp.exists():
                    tmp.unlink()
            meta = path.with_suffix(".json")
            meta_tmp = path.with_suffix(".json.tmp.%d" % os.getpid())
            try:
                with open(meta_tmp, "w", encoding="utf-8") as handle:
                    json.dump({"schema": STORE_SCHEMA_VERSION,
                               "payload": _canonical(payload)},
                              handle, indent=2, sort_keys=True)
                    handle.write("\n")
                os.replace(meta_tmp, meta)
            finally:
                if meta_tmp.exists():
                    meta_tmp.unlink()
            self.stats.writes += 1
            if self.metrics is not None:
                self.metrics.counter("store_writes").inc()
        return path

    # -- maintenance -------------------------------------------------------

    def entries(self, kind: Optional[str] = None) -> List[Path]:
        """Every pickled artifact currently on disk.

        The walk is derived from the registered namespaces
        (:data:`KINDS`), never a glob over arbitrary subdirectories, so
        adding a namespace without registering it is a loud failure
        (in :meth:`path_for`) rather than a silent maintenance gap.
        ``kind`` restricts the listing to one namespace.
        """
        selected = _selected_kinds(kind)  # validate before the root check
        if not self.root.is_dir():
            return []
        found: List[Path] = []
        for name in selected:
            found.extend((self.root / name).glob("*.pkl"))
        return sorted(found)

    def stale_tmp(self, kind: Optional[str] = None) -> List[Path]:
        """Orphaned temporaries left behind by crashed writers."""
        selected = _selected_kinds(kind)
        if not self.root.is_dir():
            return []
        found: List[Path] = []
        for name in selected:
            found.extend((self.root / name).glob("*.tmp.*"))
        return sorted(found)

    def info(self) -> Dict[str, object]:
        """Summary for ``repro-hoiho cache info``.

        Every registered namespace is reported, including empty ones
        (zero entries, zero bytes) -- consumers see the full namespace
        inventory, not just the populated corners.
        """
        kinds: Dict[str, Dict[str, int]] = {
            name: {"entries": 0, "bytes": 0} for name in KINDS}
        total_bytes = 0
        for path in self.entries():
            size = path.stat().st_size
            entry = kinds[path.parent.name]
            entry["entries"] += 1
            entry["bytes"] += size
            total_bytes += size
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA_VERSION,
            "kinds": kinds,
            "entries": sum(k["entries"] for k in kinds.values()),
            "bytes": total_bytes,
            "stale_tmp": len(self.stale_tmp()),
            "session": self.stats.as_dict(),
        }

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete artifacts (plus sidecars and any stale temporaries
        left by crashed writers); returns entries removed.

        ``kind`` restricts the sweep to one namespace -- e.g. flushing
        ``suffixes`` without nuking warm world/timeline artifacts.
        Stale temporaries do not count as entries.
        """
        removed = 0
        for path in self.entries(kind):
            sidecar = path.with_suffix(".json")
            path.unlink()
            if sidecar.is_file():
                sidecar.unlink()
            removed += 1
        for tmp in self.stale_tmp(kind):
            tmp.unlink()
        return removed


def _check_kind(kind: str) -> None:
    if kind not in KINDS:
        raise ValueError("unknown artifact namespace %r (registered: %s)"
                         % (kind, ", ".join(KINDS)))


def _selected_kinds(kind: Optional[str]) -> Tuple[str, ...]:
    """The namespaces a maintenance walk covers (all, or one)."""
    if kind is None:
        return KINDS
    _check_kind(kind)
    return (kind,)
