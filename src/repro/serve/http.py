"""``repro.serve.http`` -- the network-facing annotation server.

Promotes the stdin/stdout serving loop to a real concurrent network
service over the existing :class:`~repro.serve.service.AnnotationService`
-- stdlib only (``http.server`` + ``socket`` + ``os.fork``), because the
hot path is the service's ``annotate_batch`` and the transport just has
to stay out of its way.

Endpoints (JSON in/out, HTTP/1.1 keep-alive):

* ``POST /annotate`` -- ``{"hostname": ...}`` ->
  ``{"hostname": ..., "asn": ...}`` (``asn`` null on miss/malformed);
* ``POST /annotate/batch`` -- ``{"hostnames": [...]}`` ->
  ``{"count": N, "asns": [...]}``, result-identical to
  ``AnnotationService.annotate_batch`` on the same list;
* ``GET /metrics`` -- Prometheus text exposition
  (:func:`repro.obs.prom.to_prometheus`) of the **merged** per-worker
  registries (see below);
* ``GET /healthz`` -- liveness: 200 as long as the worker can answer,
  including while draining;
* ``GET /readyz`` -- readiness: 200 while accepting new work, 503 once
  draining (the load-balancer signal);
* ``GET /admin/status`` -- uptime, inflight, and *windowed* health
  (req/s, error rate, p50/p90/p99 over the rolling windows of
  :mod:`repro.obs.timeseries`, fleet-merged) -- what ``repro-hoiho
  watch`` renders;
* ``POST /admin/reload`` -- re-read the configured conventions file and
  atomically hot-swap every worker's convention set via the service's
  ``reload_*`` machinery (in-flight requests keep the old index);
* ``POST /admin/shadow`` -- (re)load the configured ``--shadow``
  candidate conventions file side-by-side (see
  :mod:`repro.serve.shadow`): every subsequent request is annotated
  against primary *and* candidate, callers keep seeing only the
  primary's answers;
* ``GET /admin/shadow/report`` -- the JSON per-suffix disagreement
  ledger, merged across every pre-fork worker;
* ``POST /admin/shadow/promote`` -- swap the candidate in as the new
  primary (atomic, via the same ``reload_result`` machinery), gated by
  ``--promote-threshold`` when configured.

The shadow admin verbs follow the reload pattern in pre-fork mode: one
worker cannot touch its siblings' candidate, so ``/admin/shadow``
SIGUSR1s the parent and ``/admin/shadow/promote`` SIGUSR2s it (202),
and the parent broadcasts to every worker -- SIGHUP:reload ::
SIGUSR1:shadow-load :: SIGUSR2:promote.  The report merges per-worker
``stats()`` snapshots from the shared metrics directory through
:func:`repro.serve.shadow.merge_shadow_reports` (staleness bounded by
``flush_interval``; the serving worker flushes itself first).

Protection: request bodies above ``max_body`` are rejected with 413
(and the connection closed -- the body is never read); when more than
``max_inflight`` annotation requests are already executing in a worker,
new ones get 429 + ``Retry-After`` (bounded in-flight budget =
backpressure instead of collapse).  Handler exceptions never kill a
worker: anything unexpected becomes a 500 JSON response.

Scale-out is a **pre-fork worker pool**: the parent builds and warms
the service once, then forks ``workers`` processes that inherit the
fully-built fused :class:`~repro.serve.index.DispatchIndex` (the PR-6
fork-inheritance property -- no per-worker JSON re-parse, no duplicate
compile work).  Where ``SO_REUSEPORT`` exists the parent *binds without
listening* to reserve the port (resolving ``port=0`` once) and each
worker opens its own listening socket on it, giving kernel-level accept
balancing; elsewhere the workers share the parent's inherited listener.

Metrics aggregation: after ``fork`` each worker's registry diverges, so
workers periodically flush ``service.stats()`` snapshots to a shared
metrics directory (atomic ``os.replace``), and ``GET /metrics`` merges
every worker's latest snapshot through
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` -- one
scrape, fleet-wide counters (staleness bounded by ``flush_interval``).

Shutdown: SIGTERM/SIGINT starts a **graceful drain** -- ``/readyz``
flips to 503, responses carry ``Connection: close``, the worker keeps
serving (so ``/healthz`` stays green) for ``drain_grace`` seconds and
until in-flight annotation requests hit zero (bounded by
``drain_timeout``), then stops accepting, flushes a final metrics
snapshot, and exits 0.  The parent forwards signals, reaps every
worker, merges their final snapshots, and writes ``metrics_out``.
SIGHUP is the out-of-band reload broadcast (what ``/admin/reload``
uses to reach sibling workers).

``ServerProcess`` wraps the whole tree (parent + workers) in one child
process for tests, benchmarks, and the load generator
(:mod:`repro.serve.loadgen`).
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.logjson import JsonLogger, NULL_LOG, new_request_id, \
    open_json_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import to_prometheus
from repro.obs.timeseries import HistoryStore, RollingWindows
from repro.obs.trace import Tracer
from repro.serve.service import AnnotationService
from repro.serve.shadow import ShadowService, merge_shadow_reports, \
    merge_shadow_snapshots, shadow_report_from_snapshot

#: Default request-body ceiling (bytes): 8 MiB fits ~100k hostnames.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Default bound on concurrently executing annotation requests/worker.
DEFAULT_MAX_INFLIGHT = 64

#: Prometheus text exposition content type.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Sentinel for "the 4xx reply already went out" -- distinct from any
#: parsed JSON value (a body of literal ``null`` parses to ``None``).
_READ_ERROR = object()


def reuse_port_available() -> bool:
    """Whether this platform offers ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass
class HttpConfig:
    """Everything ``serve-http`` needs to run a server tree."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 1
    max_body: int = DEFAULT_MAX_BODY
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    #: Seconds a draining worker keeps accepting (readyz 503, healthz
    #: 200) so load balancers can observe the drain before the listener
    #: closes.
    drain_grace: float = 0.0
    #: Hard ceiling on the whole drain (grace + in-flight wait).
    drain_timeout: float = 10.0
    #: Worker metrics snapshots older than this may be re-flushed.
    flush_interval: float = 1.0
    #: Conventions JSON file ``/admin/reload`` (and SIGHUP) re-reads.
    conventions: Optional[str] = None
    #: Candidate conventions JSON file ``/admin/shadow`` (and SIGUSR1)
    #: re-reads; also loaded at startup when set.
    shadow: Optional[str] = None
    #: Refuse ``/admin/shadow/promote`` while the merged disagreement
    #: fraction exceeds this (``None`` = no gate).
    promote_threshold: Optional[float] = None
    #: Where the parent writes the merged snapshot after shutdown.
    metrics_out: Optional[str] = None
    #: Shared snapshot directory (default: a private temp dir).
    metrics_dir: Optional[str] = None
    #: Force/forbid per-worker ``SO_REUSEPORT`` sockets (None = auto).
    reuse_port: Optional[bool] = None
    backlog: int = 128
    #: Structured JSON access log: a path (workers append; O_APPEND +
    #: one-write-per-line keeps lines whole across processes), ``"-"``
    #: for stderr, ``None`` to disable.
    access_log: Optional[str] = None
    #: Trace 1-in-N requests as spans to ``trace_out`` (0 = off).
    trace_sample: int = 0
    #: JSONL sink for sampled request spans.
    trace_out: Optional[str] = None
    #: JSONL history of merged snapshots (``HistoryStore``); the
    #: parent appends every ``history_interval`` seconds and once at
    #: shutdown, so even a short run leaves one comparable entry.
    history: Optional[str] = None
    history_interval: float = 10.0
    #: Rolling-window geometry behind ``/admin/status`` (aligned
    #: windows of ``window_seconds``, newest ``window_count`` kept).
    window_seconds: float = 10.0
    window_count: int = 60

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.workers < 1:
            raise ValueError("--workers must be >= 1, got %d" % self.workers)
        if not 0 <= self.port <= 65535:
            raise ValueError("--port must be 0..65535, got %d" % self.port)
        if self.max_body < 1:
            raise ValueError("--max-body must be >= 1 byte, got %d"
                             % self.max_body)
        if self.max_inflight < 1:
            raise ValueError("--max-inflight must be >= 1, got %d"
                             % self.max_inflight)
        if self.drain_grace < 0 or self.drain_timeout < 0:
            raise ValueError("drain timings must be >= 0")
        if self.promote_threshold is not None \
                and not 0.0 <= self.promote_threshold <= 1.0:
            raise ValueError(
                "--promote-threshold is a fraction in [0, 1], got %r"
                % self.promote_threshold)
        if self.trace_sample < 0:
            raise ValueError("--trace-sample must be >= 0, got %d"
                             % self.trace_sample)
        if self.trace_sample > 0 and not self.trace_out:
            raise ValueError("--trace-sample needs --trace-out (the "
                             "JSONL sink for sampled request spans)")
        if self.history_interval <= 0:
            raise ValueError("history interval must be > 0 seconds")
        if self.window_seconds <= 0 or self.window_count < 1:
            raise ValueError("window geometry must be positive")


def create_listener(host: str, port: int, reuse_port: bool = False,
                    backlog: int = 128) -> socket.socket:
    """A bound, listening TCP socket (``SO_REUSEPORT`` optional)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuse_port:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


def _reserve_port(host: str, port: int) -> socket.socket:
    """Bind (without listening) to reserve ``port`` for the workers.

    A bound-but-not-listening socket never receives connections -- TCP
    lookup only considers listeners -- so the parent can hold this open
    for the server's lifetime while every worker's own ``SO_REUSEPORT``
    listener takes the traffic.  Binding to port 0 here resolves the
    ephemeral port exactly once, before any worker exists.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


class MetricsDir:
    """The shared per-worker snapshot directory behind ``/metrics``.

    Each worker owns one file (``worker-<id>.json``), written atomically
    (temp file + ``os.replace``) so a concurrent reader never sees a
    torn snapshot.  Extra keys in a snapshot (``memo``, ``fused_plans``
    from ``AnnotationService.stats()``) ride along untouched;
    ``merge_snapshot`` ignores them.  ``flush`` stamps ``ts`` (epoch
    seconds) and ``worker_id`` into every file, so scrape staleness is
    observable (:meth:`ages`, the ``repro_snapshot_age_seconds`` gauge
    on ``/metrics``) instead of inferred from ``flush_interval``.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def flush(self, worker_id: int, snapshot: Dict[str, object]) -> None:
        """Atomically publish ``worker_id``'s current snapshot."""
        snapshot = dict(snapshot)
        snapshot["ts"] = time.time()
        snapshot["worker_id"] = worker_id
        target = os.path.join(self.path, "worker-%d.json" % worker_id)
        fd, tmp = tempfile.mkstemp(prefix=".worker-%d." % worker_id,
                                   dir=self.path)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, sort_keys=True)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def snapshots(self) -> Iterator[Dict[str, object]]:
        """Every worker's latest snapshot (unreadable files skipped)."""
        try:
            names = sorted(os.listdir(self.path))
        except OSError:
            return
        for name in names:
            if not (name.startswith("worker-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.path, name),
                          encoding="utf-8") as handle:
                    yield json.load(handle)
            except (OSError, ValueError):
                continue  # mid-replace or already gone

    def merged(self) -> Dict[str, object]:
        """One registry snapshot folding every worker's together."""
        registry = MetricsRegistry()
        for snapshot in self.snapshots():
            registry.merge_snapshot(snapshot)
        return registry.snapshot()

    def merged_with_shadow(self) -> Dict[str, object]:
        """The merged snapshot with the folded ``shadow`` extra attached.

        What the serving history persists: counters *and* the ledger
        meta, so ``shadow-report --history`` can compare candidates
        across server lifetimes.
        """
        return merge_shadow_snapshots(self.snapshots())

    def ages(self, now: Optional[float] = None) -> Dict[int, float]:
        """Per-worker snapshot age in seconds, from the stamped ``ts``.

        Workers whose files predate the stamp (or are unreadable) are
        omitted rather than reported with a made-up age.
        """
        now = time.time() if now is None else now
        ages: Dict[int, float] = {}
        for snapshot in self.snapshots():
            ts = snapshot.get("ts")
            worker_id = snapshot.get("worker_id")
            if ts is None or worker_id is None:
                continue
            ages[int(worker_id)] = max(0.0, now - float(ts))
        return ages


class AnnotationHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one annotation service.

    One instance per worker process (and the whole server when
    ``workers=1``).  Connections get a thread each (keep-alive held
    across requests); annotation work is bounded by the in-flight
    budget, not the thread count.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: AnnotationService, config: HttpConfig,
                 sock: Optional[socket.socket] = None,
                 worker_id: int = 0,
                 metrics_dir: Optional[MetricsDir] = None) -> None:
        self.service = service
        self.config = config
        self.worker_id = worker_id
        self.metrics_dir = metrics_dir
        #: Parent pid to SIGHUP for a fleet-wide reload (pre-fork
        #: workers only; ``None`` means reload inline).
        self.broadcast_pid: Optional[int] = None
        self.draining = threading.Event()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._last_flush = 0.0
        self.started_monotonic = time.monotonic()
        self.started_ts = time.time()
        #: Windowed telemetry behind ``/admin/status``; fed the fleet's
        #: merged snapshot (or the live stats when single-process) by
        #: the flush loop and on-demand by the status endpoint.
        self.windows = RollingWindows(config.window_seconds,
                                      config.window_count)
        # Baseline at boot: the first real sample then diffs against
        # zero, so requests served before the first flush-loop pass
        # still land in a window (http_* counters start at 0 here).
        self.windows.record({})
        #: Structured diagnostics (replaces print-to-stderr); each
        #: forked worker rebuilds it with its own ``worker_id``.
        self.log = JsonLogger(worker_id=worker_id)
        # Buffered: the per-request cost is an enqueue; a drainer
        # thread batches the JSON lines out (see repro.obs.logjson).
        self.access_log = open_json_logger(config.access_log,
                                           worker_id=worker_id,
                                           buffered=True)
        self._tracer: Optional[Tracer] = None
        self._trace_lock = threading.Lock()
        self._trace_seq = 0
        if config.trace_sample > 0 and config.trace_out:
            # Append mode: in pre-fork mode every worker writes spans
            # to the same file, and one-write-per-record keeps the
            # JSONL whole (same discipline as the access log).
            self._tracer = Tracer(
                stream=open(config.trace_out, "a", encoding="utf-8"))
        #: HistoryStore in single-process mode (the pre-fork parent
        #: owns the history instead -- see ``_serve_prefork``).
        self.history: Optional[HistoryStore] = None
        address = (config.host, config.port)
        super().__init__(address, AnnotationHandler,
                         bind_and_activate=False)
        if sock is not None:
            self.socket.close()
            self.socket = sock
            self.server_address = sock.getsockname()
            self.server_name = config.host
            self.server_port = self.server_address[1]
        else:
            self.server_bind()
            self.server_activate()

    # -- in-flight budget --------------------------------------------------

    def try_begin_request(self) -> bool:
        """Admit one annotation request, or refuse at the budget."""
        with self._inflight_lock:
            if self._inflight >= self.config.max_inflight:
                return False
            self._inflight += 1
            return True

    def end_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Annotation requests currently executing."""
        return self._inflight

    # -- metrics -----------------------------------------------------------

    def flush_metrics(self) -> None:
        """Publish this worker's snapshot to the shared directory."""
        if self.metrics_dir is not None:
            self.metrics_dir.flush(self.worker_id, self.service.stats())
        self._last_flush = time.monotonic()

    def maybe_flush(self) -> None:
        """Flush if the published snapshot has gone stale."""
        if self.metrics_dir is None:
            return
        if time.monotonic() - self._last_flush >= self.config.flush_interval:
            self.flush_metrics()

    def merged_metrics(self) -> str:
        """Prometheus exposition of the whole fleet's counters.

        Pre-fork, the text ends with a hand-rendered
        ``repro_snapshot_age_seconds`` gauge (one sample per worker,
        from the ``ts`` stamped into each flushed file) --
        ``to_prometheus`` only knows the three registry instrument
        kinds, and a gauge that *should* go down is exactly what they
        are not.
        """
        if self.metrics_dir is None:
            return to_prometheus(self.service.stats())
        self.flush_metrics()  # the merge must include this worker, live
        text = to_prometheus(self.metrics_dir.merged())
        ages = self.metrics_dir.ages()
        if ages:
            lines = ["# HELP repro_snapshot_age_seconds Age of each "
                     "worker's flushed metrics snapshot.",
                     "# TYPE repro_snapshot_age_seconds gauge"]
            lines += ["repro_snapshot_age_seconds{worker=\"%d\"} %.6f"
                      % (worker, age)
                      for worker, age in sorted(ages.items())]
            text += "\n".join(lines) + "\n"
        return text

    # -- windowed telemetry ------------------------------------------------

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The cumulative snapshot the time axis samples.

        Fleet-wide when a metrics dir exists (any worker can then
        answer ``/admin/status`` for the whole fleet), this worker's
        live ``stats()`` otherwise.
        """
        if self.metrics_dir is not None:
            return self.metrics_dir.merged()
        return self.service.stats()

    def record_windows(self, ts: Optional[float] = None) -> None:
        """Fold the current cumulative snapshot into the windows."""
        self.windows.record(self.telemetry_snapshot(), ts)

    def status_payload(self) -> Dict[str, object]:
        """The ``GET /admin/status`` body: uptime + windowed health."""
        if self.metrics_dir is not None:
            self.flush_metrics()  # the window must see this worker, live
        self.record_windows()
        now = time.time()
        window = self.windows.window_snapshot(now)
        counters = window.get("counters") or {}
        requests = counters.get("http_requests", 0)
        by_status = (window.get("labelled") or {}).get(
            "http_responses", {})
        errors = sum(count for status, count in by_status.items()
                     if str(status).startswith("5"))
        covered = self.windows.covered_seconds(now)
        payload: Dict[str, object] = {
            "status": "draining" if self.draining.is_set() else "ok",
            "worker": self.worker_id,
            "workers": self.config.workers,
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "started_ts": self.started_ts,
            "inflight": self.inflight,
            "window": {
                "covered_seconds": covered,
                "width_seconds": self.windows.width_seconds,
                "count": self.windows.count,
                "requests": requests,
                "requests_per_second": (requests / covered
                                        if covered else 0.0),
                "errors": errors,
                "error_rate": errors / requests if requests else 0.0,
                "latency": self.windows.percentiles(
                    "http_request_seconds", now=now),
            },
        }
        if self.metrics_dir is not None:
            payload["snapshot_age_seconds"] = {
                str(worker): age for worker, age
                in sorted(self.metrics_dir.ages(now).items())}
        return payload

    # -- request trace sampling --------------------------------------------

    def sample_span(self, method: str, path: str) -> Optional["object"]:
        """A span for this request if it is 1-in-N sampled, else None.

        The tracer is single-threaded by design, so span creation is
        locked and the new span is immediately popped off the tracer's
        stack -- concurrent sampled requests must emit as independent
        top-level spans, not accidentally nested ones.
        """
        if self._tracer is None:
            return None
        with self._trace_lock:
            self._trace_seq += 1
            if self._trace_seq % self.config.trace_sample != 0:
                return None
            span = self._tracer.span("http.request", method=method,
                                     path=path, worker=self.worker_id)
            try:
                self._tracer._stack.remove(span)
            except ValueError:
                pass
            return span

    def finish_span(self, span: "object", **attrs: object) -> None:
        """Stamp final attrs and emit a sampled request span."""
        with self._trace_lock:
            span.set(**attrs)  # type: ignore[attr-defined]
            span.finish()  # type: ignore[attr-defined]
            # The tracer also accumulates records in memory for
            # programmatic use; a long-lived server only needs the
            # JSONL sink, so drop them as they emit.
            self._tracer.records.clear()

    def start_flush_loop(self) -> None:
        """Keep the published snapshot fresh even with zero traffic.

        Flushes otherwise happen only on the request path, so a worker
        that stops receiving connections would publish its last
        snapshot forever -- and a sibling answering
        ``/admin/shadow/report`` (or the promote gate) would keep
        reading it as current.  This loop bounds every worker's
        staleness to ~2x ``flush_interval`` regardless of traffic;
        ``maybe_flush`` already skips when the request path kept the
        file fresh.  The sleep is floored: ``flush_interval=0.0``
        means flush-per-request on the serving path, not a busy-spin
        here that would starve the request threads.

        The same cadence feeds the rolling windows: each pass records
        the merged (or live) cumulative snapshot, so ``/admin/status``
        answers from fresh windows even on an idle server.
        """
        delay = max(self.config.flush_interval, 0.05)

        def _loop() -> None:
            while not self.draining.is_set():
                time.sleep(delay)
                try:
                    self.maybe_flush()
                    self.record_windows()
                except OSError:
                    pass  # the final drain-time flush will retry

        threading.Thread(target=_loop, daemon=True).start()

    def start_history_loop(self) -> None:
        """Append the cumulative snapshot to the history periodically.

        Single-process mode only (the pre-fork parent runs its own
        loop over the metrics dir); a final append happens at drain
        time so even a short-lived run leaves one comparable entry.
        """
        if self.history is None:
            return
        delay = max(self.config.history_interval, 0.05)

        def _loop() -> None:
            while not self.draining.wait(delay):
                try:
                    self.history.append(self.service.stats())
                except OSError:
                    pass

        threading.Thread(target=_loop, daemon=True).start()

    def server_close(self) -> None:
        """Close the socket, then drain the buffered access log."""
        super().server_close()
        self.access_log.close()

    # -- reload ------------------------------------------------------------

    def reload_inline(self) -> int:
        """Re-read the configured conventions file; returns plan count.

        Raises on unreadable/unparseable files -- and the old
        conventions stay live, because ``reload_json_file`` only swaps
        after a successful build.
        """
        if not self.config.conventions:
            raise LookupError("no conventions file configured to reload")
        count = self.service.reload_json_file(self.config.conventions)
        self.service.metrics.counter("reloads").inc()
        return count

    def _reload_from_signal(self) -> None:
        """SIGHUP entry: reload, never raise (workers must survive)."""
        try:
            self.reload_inline()
        except Exception as exc:
            self.service.metrics.counter("reload_errors").inc()
            self.log.log("reload_failed", level="error", error=str(exc),
                         conventions=self.config.conventions)

    # -- shadow ------------------------------------------------------------

    def shadow_service(self) -> Optional[ShadowService]:
        """This worker's service as a ``ShadowService``, if it is one."""
        service = self.service
        return service if isinstance(service, ShadowService) else None

    def shadow_load_inline(self) -> int:
        """Re-read the configured candidate file; returns its plan count.

        Mirrors :meth:`reload_inline`: raises on unreadable files and
        missing configuration; a failed load leaves the previous
        candidate (or no candidate) live.
        """
        if not self.config.shadow:
            raise LookupError("no --shadow candidate file configured")
        shadow = self.shadow_service()
        if shadow is None:
            raise LookupError(
                "server is not running in shadow mode; restart with "
                "--shadow")
        count = shadow.load_candidate_file(self.config.shadow)
        self.service.metrics.counter("shadow_loads").inc()
        return count

    def _shadow_load_from_signal(self) -> None:
        """SIGUSR1 entry: load the candidate, never raise."""
        try:
            self.shadow_load_inline()
        except Exception as exc:
            self.service.metrics.counter("shadow_load_errors").inc()
            self.log.log("shadow_load_failed", level="error",
                         error=str(exc), candidate=self.config.shadow)
        else:
            if self.metrics_dir is not None:
                self.flush_metrics()  # publish the cleared ledger now

    def promote_inline(self) -> int:
        """Swap the candidate in as primary; returns the plan count."""
        shadow = self.shadow_service()
        if shadow is None:
            raise LookupError(
                "server is not running in shadow mode; restart with "
                "--shadow")
        count = shadow.promote()
        self.service.metrics.counter("shadow_promotes").inc()
        return count

    def _shadow_promote_from_signal(self) -> None:
        """SIGUSR2 entry: promote, never raise."""
        try:
            self.promote_inline()
        except Exception as exc:
            self.service.metrics.counter("shadow_promote_errors").inc()
            self.log.log("shadow_promote_failed", level="error",
                         error=str(exc))
        else:
            if self.metrics_dir is not None:
                self.flush_metrics()  # publish the cleared ledger now

    def shadow_report(self) -> Dict[str, object]:
        """The disagreement report this worker can see.

        Pre-fork: flush this worker's live counters, then fold every
        worker's latest snapshot (``merge_shadow_reports``).  Single
        process: straight from the live ``stats()``.
        """
        if self.metrics_dir is not None:
            self.flush_metrics()
            return merge_shadow_reports(self.metrics_dir.snapshots())
        return shadow_report_from_snapshot(self.service.stats())

    # -- drain -------------------------------------------------------------

    def drain(self) -> None:
        """Graceful shutdown: linger, wait out in-flight work, stop.

        Must not run on the ``serve_forever`` thread (``shutdown``
        waits for that loop to exit) -- signal handlers spawn a thread.
        """
        self.draining.set()
        started = time.monotonic()
        deadline = started + max(self.config.drain_timeout,
                                 self.config.drain_grace)
        while time.monotonic() < deadline:
            grace_over = (time.monotonic() - started
                          >= self.config.drain_grace)
            if grace_over and self.inflight == 0:
                break
            time.sleep(0.01)
        self.shutdown()


class AnnotationHandler(BaseHTTPRequestHandler):
    """Request handler: route, guard, annotate, count."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve-http/1.0"
    #: TCP_NODELAY: headers and body flush as separate writes, and
    #: Nagle + delayed ACK would otherwise add ~40ms to every response.
    disable_nagle_algorithm = True
    #: Socket timeout: bounds idle keep-alive reads and lying
    #: Content-Length headers.
    timeout = 30

    server: AnnotationHTTPServer  # for type checkers

    def log_message(self, format: str, *args: object) -> None:
        """Quiet: request accounting happens in the registry."""

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        registry = self.server.service.metrics
        started = time.perf_counter()
        self._last_status: Optional[int] = None
        self._bytes_sent = 0
        # Honour a caller-supplied id (so a proxy's id threads through
        # our logs) or mint one; either way it is echoed in the
        # ``X-Request-Id`` response header and stamped on the access
        # line and any sampled span.
        self._request_id = (self.headers.get("X-Request-Id")
                            or new_request_id())
        path = self.path.split("?", 1)[0]
        span = self.server.sample_span(method, path)
        try:
            by_method = _ROUTES.get(path)
            if by_method is None:
                self._send_json(404, {"error": "no such endpoint",
                                      "path": path})
            else:
                route = by_method.get(method)
                if route is None:
                    self._send_json(
                        405, {"error": "method not allowed"},
                        headers={"Allow": ", ".join(sorted(by_method))})
                else:
                    route(self)
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            self.close_connection = True
        except Exception as exc:  # a handler bug must not kill the worker
            try:
                self._send_json(500, {
                    "error": "internal server error",
                    "detail": "%s: %s" % (type(exc).__name__, exc)})
            except OSError:
                self.close_connection = True
        finally:
            elapsed = time.perf_counter() - started
            registry.counter("http_requests").inc()
            if self._last_status is not None:
                registry.labelled("http_responses").inc(
                    str(self._last_status))
            registry.histogram("http_request_seconds").observe(elapsed)
            self.server.access_log.log(
                "access", method=method, path=path,
                status=self._last_status, bytes=self._bytes_sent,
                latency_seconds=round(elapsed, 9),
                request_id=self._request_id)
            if span is not None:
                self.server.finish_span(
                    span, status=self._last_status,
                    bytes=self._bytes_sent,
                    request_id=self._request_id)
            self.server.maybe_flush()

    # -- response plumbing -------------------------------------------------

    def _send_bytes(self, status: int, body: bytes, content_type: str,
                    headers: Optional[Dict[str, str]] = None) -> None:
        self._last_status = status
        self._bytes_sent = len(body)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id",
                         getattr(self, "_request_id", None)
                         or new_request_id())
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        if self.server.draining.is_set() or self.close_connection:
            # Draining (get keep-alive clients off this worker) or the
            # stream is unusable (e.g. an unread 413 body): say so.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        self._send_bytes(status, body, "application/json", headers)

    def _read_json(self, allow_empty: bool = False) -> object:
        """The request's JSON payload, or ``_READ_ERROR`` after a reply.

        Enforces ``max_body`` *before* reading (an oversized body is
        refused and the connection closed -- the bytes never transit),
        requires ``Content-Length`` (411 without it), and turns bad
        UTF-8 or bad JSON into a 400 instead of an exception.  The
        error sentinel is not ``None`` because ``None`` is a valid
        parse (a body of literal ``null``) that must reach the
        endpoint's own shape validation.
        """
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            self._send_json(411, {"error": "Content-Length required"})
            return _READ_ERROR
        try:
            length = int(raw_length)
        except ValueError:
            self._send_json(400, {"error": "malformed Content-Length"})
            return _READ_ERROR
        if length < 0:
            self._send_json(400, {"error": "malformed Content-Length"})
            return _READ_ERROR
        if length > self.server.config.max_body:
            self.close_connection = True  # unread body: unusable stream
            self._send_json(413, {
                "error": "request body exceeds %d bytes"
                         % self.server.config.max_body,
                "max_body": self.server.config.max_body})
            return _READ_ERROR
        body = self.rfile.read(length)
        if not body and allow_empty:
            return {}
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            self._send_json(400, {"error": "body is not valid UTF-8"})
            return _READ_ERROR
        try:
            return json.loads(text)
        except ValueError:
            self._send_json(400, {"error": "body is not valid JSON"})
            return _READ_ERROR

    # -- endpoints ---------------------------------------------------------

    def _ep_healthz(self) -> None:
        self._send_json(200, {"status": "ok",
                              "worker": self.server.worker_id,
                              "draining": self.server.draining.is_set()})

    def _ep_readyz(self) -> None:
        if self.server.draining.is_set():
            self._send_json(503, {"status": "draining"})
        else:
            self._send_json(200, {"status": "ready"})

    def _ep_metrics(self) -> None:
        self._send_bytes(200, self.server.merged_metrics().encode("utf-8"),
                         PROM_CONTENT_TYPE)

    def _ep_status(self) -> None:
        """GET /admin/status: uptime, inflight, windowed health."""
        self._send_json(200, self.server.status_payload())

    def _ep_annotate(self) -> None:
        server = self.server
        if not server.try_begin_request():
            self._send_json(429, {"error": "overloaded",
                                  "inflight": server.inflight},
                            headers={"Retry-After": "1"})
            return
        try:
            payload = self._read_json()
            if payload is _READ_ERROR:
                return
            if not isinstance(payload, dict) or "hostname" not in payload:
                self._send_json(400, {
                    "error": 'expected {"hostname": ...}'})
                return
            hostname = payload["hostname"]
            asn = server.service.annotate_one(hostname)
            self._send_json(200, {"hostname": hostname, "asn": asn})
        finally:
            server.end_request()

    def _ep_annotate_batch(self) -> None:
        server = self.server
        if not server.try_begin_request():
            self._send_json(429, {"error": "overloaded",
                                  "inflight": server.inflight},
                            headers={"Retry-After": "1"})
            return
        try:
            payload = self._read_json()
            if payload is _READ_ERROR:
                return
            if (not isinstance(payload, dict)
                    or not isinstance(payload.get("hostnames"), list)):
                self._send_json(400, {
                    "error": 'expected {"hostnames": [...]}'})
                return
            hostnames = payload["hostnames"]
            asns = server.service.annotate_batch(hostnames)
            self._send_json(200, {"count": len(asns), "asns": asns})
        finally:
            server.end_request()

    def _ep_reload(self) -> None:
        server = self.server
        payload = self._read_json(allow_empty=True)
        if payload is _READ_ERROR:
            return
        configured = server.config.conventions
        if isinstance(payload, dict) and payload.get("conventions") \
                and payload["conventions"] != configured:
            self._send_json(400, {
                "error": "reload re-reads the configured conventions "
                         "file; restart to change it",
                "conventions": configured})
            return
        if not configured:
            self._send_json(409, {
                "error": "server was not started from a conventions "
                         "file; nothing to reload"})
            return
        if server.broadcast_pid is not None:
            # Pre-fork: one worker cannot swap its siblings' indexes;
            # SIGHUP the parent, which broadcasts to every worker
            # (including this one).  Asynchronous by construction.
            os.kill(server.broadcast_pid, signal.SIGHUP)
            self._send_json(202, {"reloaded": "signalled",
                                  "workers": server.config.workers,
                                  "conventions": configured})
            return
        try:
            count = server.reload_inline()
        except Exception as exc:
            server.service.metrics.counter("reload_errors").inc()
            self._send_json(500, {"error": "reload failed: %s" % exc,
                                  "conventions": configured})
            return
        self._send_json(200, {"reloaded": True, "suffixes": count,
                              "conventions": configured})

    def _ep_shadow(self) -> None:
        """POST /admin/shadow: (re)load the configured candidate file."""
        server = self.server
        payload = self._read_json(allow_empty=True)
        if payload is _READ_ERROR:
            return
        configured = server.config.shadow
        if isinstance(payload, dict) and payload.get("candidate") \
                and payload["candidate"] != configured:
            self._send_json(400, {
                "error": "shadow load re-reads the configured --shadow "
                         "file; restart to change it",
                "candidate": configured})
            return
        if not configured or server.shadow_service() is None:
            self._send_json(409, {
                "error": "server was not started with --shadow; "
                         "nothing to load"})
            return
        if server.broadcast_pid is not None:
            # Pre-fork: same discipline as reload -- one worker cannot
            # load its siblings' candidates, so SIGUSR1 the parent,
            # which broadcasts to every worker (including this one).
            os.kill(server.broadcast_pid, signal.SIGUSR1)
            self._send_json(202, {"shadow": "signalled",
                                  "workers": server.config.workers,
                                  "candidate": configured})
            return
        try:
            count = server.shadow_load_inline()
        except Exception as exc:
            server.service.metrics.counter("shadow_load_errors").inc()
            self._send_json(500, {"error": "shadow load failed: %s" % exc,
                                  "candidate": configured})
            return
        self._send_json(200, {"shadow": True, "candidate_suffixes": count,
                              "candidate": configured})

    def _ep_shadow_report(self) -> None:
        """GET /admin/shadow/report: the merged disagreement ledger."""
        server = self.server
        report = server.shadow_report()
        report["promote_threshold"] = server.config.promote_threshold
        self._send_json(200, report)

    def _ep_shadow_promote(self) -> None:
        """POST /admin/shadow/promote: gate, then swap candidate in."""
        server = self.server
        payload = self._read_json(allow_empty=True)
        if payload is _READ_ERROR:
            return
        if server.shadow_service() is None:
            self._send_json(409, {
                "error": "server was not started with --shadow; "
                         "nothing to promote"})
            return
        # The gate runs on the *merged* report (every worker's ledger),
        # before any swap happens anywhere.
        report = server.shadow_report()
        if not report["active"]:
            self._send_json(409, {
                "error": "no shadow candidate loaded; nothing to promote"})
            return
        threshold = server.config.promote_threshold
        fraction = report["disagreement_fraction"]
        if threshold is not None and fraction > threshold:
            self._send_json(409, {
                "error": "disagreement %.4f exceeds --promote-threshold "
                         "%.4f; refusing to promote" % (fraction, threshold),
                "disagreement_fraction": fraction,
                "promote_threshold": threshold,
                "disagreements": report["disagreements"],
                "requests": report["requests"]})
            return
        if server.broadcast_pid is not None:
            os.kill(server.broadcast_pid, signal.SIGUSR2)
            self._send_json(202, {"promoted": "signalled",
                                  "workers": server.config.workers,
                                  "disagreement_fraction": fraction})
            return
        try:
            count = server.promote_inline()
        except LookupError as exc:
            self._send_json(409, {"error": str(exc)})
            return
        except Exception as exc:
            server.service.metrics.counter("shadow_promote_errors").inc()
            self._send_json(500, {"error": "promote failed: %s" % exc})
            return
        self._send_json(200, {"promoted": True, "suffixes": count,
                              "disagreement_fraction": fraction})


_ROUTES: Dict[str, Dict[str, Callable[[AnnotationHandler], None]]] = {
    "/healthz": {"GET": AnnotationHandler._ep_healthz},
    "/readyz": {"GET": AnnotationHandler._ep_readyz},
    "/metrics": {"GET": AnnotationHandler._ep_metrics},
    "/annotate": {"POST": AnnotationHandler._ep_annotate},
    "/annotate/batch": {"POST": AnnotationHandler._ep_annotate_batch},
    "/admin/status": {"GET": AnnotationHandler._ep_status},
    "/admin/reload": {"POST": AnnotationHandler._ep_reload},
    "/admin/shadow": {"POST": AnnotationHandler._ep_shadow},
    "/admin/shadow/report": {"GET": AnnotationHandler._ep_shadow_report},
    "/admin/shadow/promote": {"POST": AnnotationHandler._ep_shadow_promote},
}


# -- process orchestration -------------------------------------------------


def _install_worker_signals(server: AnnotationHTTPServer) -> None:
    """SIGTERM/SIGINT drain; SIGHUP reloads; SIGUSR1/2 drive shadow.

    All run off-thread: ``shutdown`` must not be called from the
    ``serve_forever`` thread, and admin work should never stall
    accepts.  SIGUSR1 loads the configured shadow candidate, SIGUSR2
    promotes it -- the broadcast halves of ``/admin/shadow`` and
    ``/admin/shadow/promote``.
    """

    def _term(signum: int, frame: object) -> None:
        threading.Thread(target=server.drain, daemon=True).start()

    def _hup(signum: int, frame: object) -> None:
        threading.Thread(target=server._reload_from_signal,
                         daemon=True).start()

    def _usr1(signum: int, frame: object) -> None:
        threading.Thread(target=server._shadow_load_from_signal,
                         daemon=True).start()

    def _usr2(signum: int, frame: object) -> None:
        threading.Thread(target=server._shadow_promote_from_signal,
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _term)
    signal.signal(signal.SIGINT, _term)
    signal.signal(signal.SIGHUP, _hup)
    signal.signal(signal.SIGUSR1, _usr1)
    signal.signal(signal.SIGUSR2, _usr2)


def _write_metrics_out(path: str, snapshot: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _serve_single(service: AnnotationService, config: HttpConfig,
                  ready: Optional[Callable[[int], None]] = None) -> int:
    """One process, one threading server (``workers=1``)."""
    sock = create_listener(config.host, config.port,
                           backlog=config.backlog)
    server = AnnotationHTTPServer(service, config, sock=sock)
    if config.history:
        server.history = HistoryStore(config.history)
    _install_worker_signals(server)
    server.start_flush_loop()  # no metrics dir: feeds the windows only
    server.start_history_loop()
    if ready is not None:
        ready(server.server_port)
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
    if server.history is not None:
        # Final entry: even a run shorter than history_interval leaves
        # one snapshot to compare against the next lifetime's.
        server.history.append(service.stats())
    if config.metrics_out:
        _write_metrics_out(config.metrics_out, service.stats())
    return 0


def _worker_main(service: AnnotationService, config: HttpConfig,
                 shared: Optional[socket.socket], port: int,
                 worker_id: int, metrics_dir: MetricsDir,
                 parent_pid: int, ready_fd: int) -> None:
    """A forked worker's whole life; never returns (``os._exit``)."""
    code = 1
    try:
        if shared is None:
            sock = create_listener(config.host, port, reuse_port=True,
                                   backlog=config.backlog)
        else:
            sock = shared
        server = AnnotationHTTPServer(service, config, sock=sock,
                                      worker_id=worker_id,
                                      metrics_dir=metrics_dir)
        server.broadcast_pid = parent_pid
        _install_worker_signals(server)
        server.start_flush_loop()
        os.write(ready_fd, b"1")
        os.close(ready_fd)
        server.serve_forever(poll_interval=0.05)
        server.flush_metrics()  # final snapshot: drain must not lose it
        server.server_close()
        code = 0
    except Exception:
        import traceback
        traceback.print_exc(file=sys.stderr)
    finally:
        os._exit(code)


def _serve_prefork(service: AnnotationService, config: HttpConfig,
                   ready: Optional[Callable[[int], None]] = None) -> int:
    """Fork ``config.workers`` servers sharing one warmed service."""
    reuse = config.reuse_port if config.reuse_port is not None \
        else reuse_port_available()
    owns_metrics_dir = config.metrics_dir is None
    metrics_path = config.metrics_dir or tempfile.mkdtemp(
        prefix="repro-serve-http-")
    metrics_dir = MetricsDir(metrics_path)
    reservation: Optional[socket.socket] = None
    shared: Optional[socket.socket] = None
    if reuse:
        reservation = _reserve_port(config.host, config.port)
        port = reservation.getsockname()[1]
    else:
        shared = create_listener(config.host, config.port,
                                 backlog=config.backlog)
        port = shared.getsockname()[1]

    parent_pid = os.getpid()
    parent_log = JsonLogger()  # supervisor diagnostics on stderr
    pids: List[int] = []
    ready_fds: List[int] = []
    for worker_id in range(config.workers):
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            for fd in ready_fds:
                os.close(fd)
            _worker_main(service, config, shared, port, worker_id,
                         metrics_dir, parent_pid, write_fd)
            # _worker_main never returns
        os.close(write_fd)
        pids.append(pid)
        ready_fds.append(read_fd)
    if shared is not None:
        shared.close()  # the workers hold their inherited copies

    failures = 0
    for pid, read_fd in zip(pids, ready_fds):
        if os.read(read_fd, 1) != b"1":
            failures += 1
            parent_log.log("worker_start_failed", level="error", pid=pid)
        os.close(read_fd)

    def _forward(signum: int, frame: object) -> None:
        for pid in pids:
            try:
                os.kill(pid, signum if signum != signal.SIGINT
                        else signal.SIGTERM)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, _forward)
    signal.signal(signal.SIGINT, _forward)
    signal.signal(signal.SIGHUP, _forward)
    signal.signal(signal.SIGUSR1, _forward)
    signal.signal(signal.SIGUSR2, _forward)

    if ready is not None:
        ready(port)

    history: Optional[HistoryStore] = None
    history_stop = threading.Event()
    if config.history:
        history = HistoryStore(config.history)

        def _history_loop() -> None:
            delay = max(config.history_interval, 0.05)
            while not history_stop.wait(delay):
                try:
                    history.append(metrics_dir.merged_with_shadow())
                except OSError:
                    pass

        threading.Thread(target=_history_loop, daemon=True).start()

    status = 1 if failures else 0
    remaining = set(pids)
    while remaining:
        pid, wait_status = os.waitpid(-1, 0)
        if pid in remaining:
            remaining.discard(pid)
            code = os.waitstatus_to_exitcode(wait_status)
            if code != 0:
                status = 1
            parent_log.log("worker_exit",
                           level="error" if code != 0 else "info",
                           pid=pid, exit_code=code)

    history_stop.set()
    if history is not None:
        # Final fleet-wide entry (ledger included): short smoke runs
        # still leave one snapshot for slo-report / shadow-report.
        history.append(metrics_dir.merged_with_shadow())

    merged = metrics_dir.merged()
    if config.metrics_out:
        _write_metrics_out(config.metrics_out, merged)
    if reservation is not None:
        reservation.close()
    if owns_metrics_dir:
        shutil.rmtree(metrics_path, ignore_errors=True)
    return status


def serve_http(service: AnnotationService, config: HttpConfig,
               ready: Optional[Callable[[int], None]] = None) -> int:
    """Run the server tree; blocks until drained.  Returns exit code.

    ``ready(port)`` fires once every worker is listening -- with
    ``port=0`` this is how the caller learns the bound port.
    """
    config.validate()
    if config.workers == 1:
        return _serve_single(service, config, ready=ready)
    return _serve_prefork(service, config, ready=ready)


# -- test/bench harness ----------------------------------------------------


def wait_ready(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll ``/healthz`` until the server answers (or timeout)."""
    import http.client

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=1.0)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                if response.status == 200:
                    return True
            finally:
                conn.close()
        except OSError:
            time.sleep(0.05)
    return False


def _server_process_entry(conventions_json: str, config: HttpConfig,
                          memo_size: int, conn: object) -> None:
    """Child entry for :class:`ServerProcess` (module-level: picklable)."""
    service = AnnotationService.from_json(conventions_json,
                                          memo_size=memo_size)
    service.warm()
    if config.shadow:
        # Wrap and load before any fork so every worker inherits the
        # warmed candidate -- the same fork-inheritance property the
        # primary index relies on.
        shadow = ShadowService(service)
        shadow.load_candidate_file(config.shadow)
        service = shadow
    code = serve_http(service, config,
                      ready=lambda port: conn.send(port))  # type: ignore
    sys.exit(code)


class ServerProcess:
    """A whole server tree (pre-fork parent + workers) as one child.

    The handle tests, benchmarks, and the load generator share::

        with ServerProcess(conventions_json, config) as server:
            ...  # server.host, server.port are live and ready

    ``stop()`` sends SIGTERM (graceful drain) and returns the parent's
    exit code; leaving the ``with`` block does the same.
    """

    def __init__(self, conventions_json: str, config: HttpConfig,
                 memo_size: int = 65536) -> None:
        self.conventions_json = conventions_json
        self.config = config
        self.memo_size = memo_size
        self.host = config.host
        self.port: Optional[int] = None
        self._process = None
        self.exitcode: Optional[int] = None

    def start(self, timeout: float = 30.0) -> "ServerProcess":
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe()
        self._process = multiprocessing.Process(
            target=_server_process_entry,
            args=(self.conventions_json, self.config, self.memo_size,
                  child_conn))
        self._process.start()
        child_conn.close()
        if not parent_conn.poll(timeout):
            self.stop()
            raise RuntimeError("server did not report ready in %.0fs"
                               % timeout)
        self.port = parent_conn.recv()
        parent_conn.close()
        if not wait_ready(self.host, self.port, timeout=timeout):
            self.stop()
            raise RuntimeError("server bound but never answered /healthz")
        return self

    def signal(self, signum: int) -> None:
        """Deliver ``signum`` to the server parent (e.g. SIGHUP)."""
        if self._process is not None and self._process.pid:
            os.kill(self._process.pid, signum)

    def stop(self, timeout: float = 15.0) -> Optional[int]:
        """SIGTERM the tree, join it, and return the exit code."""
        if self._process is None:
            return self.exitcode
        if self._process.is_alive():
            try:
                self.signal(signal.SIGTERM)
            except ProcessLookupError:
                pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(5.0)
        self.exitcode = self._process.exitcode
        self._process = None
        return self.exitcode

    def __enter__(self) -> "ServerProcess":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
