"""``repro.serve.loadgen`` -- open/closed-loop HTTP load generation.

The measurement harness that turns the ROADMAP's "serve heavy traffic"
into numbers: drive :mod:`repro.serve.http` over real sockets and
report throughput plus latency percentiles from
:mod:`repro.obs.metrics` histograms.

Two loop disciplines, because they answer different questions:

* **closed loop** -- ``concurrency`` workers, each with one persistent
  keep-alive connection, issuing the next request the moment the
  previous response lands.  Measures *capacity*: the throughput the
  server sustains when clients are never the bottleneck.  Latency here
  is pure service time (the client waited for nothing but the server).
* **open loop** -- requests are released on a fixed schedule
  (``rate`` per second) regardless of completions, and each latency is
  measured **from the scheduled send time**, so queueing delay when the
  server falls behind is charged to the request instead of silently
  absorbed (the coordinated-omission correction).  Measures *behaviour
  at a given offered load*.

Determinism: the caller supplies the hostname stream (the bench reuses
``repro.bench.zipf_hostnames``, the PR-6 Zipf workload, so HTTP numbers
are comparable with the in-process memo/dispatch kernels) and
:func:`workload_fingerprint` hashes it into the result, so two reports
claiming the same fingerprint measured byte-identical workloads.

Every worker thread keeps a private :class:`MetricsRegistry` (no lock
contention on the hot path); the final report merges them through
``MetricsRegistry.merge_snapshot`` -- the same primitive the pre-fork
server uses for its own cross-process aggregation.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry

#: Latency bounds (seconds) for loadgen histograms: 100us .. 30s.
#: Wider than the serve-side default because open-loop latencies
#: include queueing delay, which can dwarf service time under overload.
LOADGEN_LATENCY_BOUNDS = (
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1,
    1.0, 2.0, 5.0, 10.0, 30.0,
)


def workload_fingerprint(hostnames: Sequence[str]) -> str:
    """SHA-256 over the exact hostname stream (order-sensitive).

    Recorded in every loadgen result and in the bench ``http`` section:
    equal fingerprints mean byte-identical workloads, so throughput
    numbers are comparable across runs and against the in-process
    serve bench, which fingerprints the same ``zipf_hostnames`` stream.
    """
    digest = hashlib.sha256()
    for hostname in hostnames:
        digest.update(hostname.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class LoadGenConfig:
    """One load-generation run against a live server."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: ``closed`` (capacity) or ``open`` (fixed offered rate).
    mode: str = "closed"
    #: Total requests to issue.
    requests: int = 1000
    #: Closed loop: concurrent connections.  Open loop: sender threads
    #: (must exceed rate * typical latency or the schedule slips).
    concurrency: int = 4
    #: Open loop only: offered requests per second.
    rate: float = 100.0
    #: Hostnames per request: 1 -> ``POST /annotate``, else
    #: ``POST /annotate/batch`` with slices of this size.
    batch_size: int = 1
    timeout: float = 30.0

    def validate(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open', got %r"
                             % self.mode)
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch-size must be >= 1")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError("open loop needs rate > 0")


class _Client:
    """One persistent keep-alive connection with reconnect-on-error."""

    def __init__(self, config: LoadGenConfig) -> None:
        self.config = config
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            conn = http.client.HTTPConnection(
                self.config.host, self.config.port,
                timeout=self.config.timeout)
            conn.connect()
            # Headers and body go out as separate writes; without
            # TCP_NODELAY, Nagle + delayed ACK adds ~40ms per request.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def post(self, path: str, payload: Dict[str, object]) -> int:
        """POST ``payload``; returns the status (0 = transport error).

        The response body is always drained (keep-alive requires it),
        and transport errors tear the connection down so the next call
        starts clean -- the server closing connections during drain is
        an expected, recoverable event, not a crash.  That event
        surfaces as ``http.client`` protocol errors
        (``BadStatusLine``/``ResponseNotReady``/...), not just
        ``OSError``, so both families count as transport errors here --
        an uncaught one would kill the worker thread instead.
        """
        body = json.dumps(payload).encode("utf-8")
        try:
            conn = self._connection()
            conn.request("POST", path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            response.read()
            if response.will_close:
                self.close()
            return response.status
        except (OSError, http.client.HTTPException):
            self.close()
            return 0


def _request_payloads(hostnames: Sequence[str], requests: int,
                      batch_size: int) -> List[Dict[str, object]]:
    """The request bodies, cycling the hostname stream as needed."""
    total = len(hostnames)
    payloads: List[Dict[str, object]] = []
    cursor = 0
    for _ in range(requests):
        if batch_size == 1:
            payloads.append({"hostname": hostnames[cursor % total]})
            cursor += 1
        else:
            batch = [hostnames[(cursor + i) % total]
                     for i in range(batch_size)]
            payloads.append({"hostnames": batch})
            cursor += batch_size
    return payloads


def _observe(registry: MetricsRegistry, status: int,
             latency: float) -> None:
    registry.counter("requests").inc()
    registry.labelled("status").inc(str(status) if status else "error")
    if status == 200:
        registry.histogram("latency_seconds",
                           LOADGEN_LATENCY_BOUNDS).observe(latency)
    else:
        registry.counter("errors").inc()


def _closed_worker(config: LoadGenConfig, path: str,
                   payloads: Sequence[Dict[str, object]],
                   registry: MetricsRegistry) -> None:
    client = _Client(config)
    try:
        for payload in payloads:
            started = time.perf_counter()
            status = client.post(path, payload)
            _observe(registry, status, time.perf_counter() - started)
    finally:
        client.close()


def _open_worker(config: LoadGenConfig, path: str,
                 payloads: Sequence[Dict[str, object]],
                 schedule: Sequence[float],
                 barrier: "threading.Barrier", epoch_box: List[float],
                 next_index: List[int], index_lock: threading.Lock,
                 registry: MetricsRegistry) -> None:
    try:
        client = _Client(config)
    except BaseException:
        # A worker that never reaches the barrier would deadlock its
        # siblings; break the barrier so they fail fast instead.
        barrier.abort()
        raise
    try:
        # The epoch -- time zero of every schedule slot -- is stamped
        # by the barrier action once ALL senders are up.  Capturing it
        # before the threads start would charge thread-startup time to
        # the first requests' coordinated-omission-corrected latency.
        barrier.wait()
        epoch = epoch_box[0]
        while True:
            with index_lock:
                index = next_index[0]
                if index >= len(payloads):
                    return
                next_index[0] = index + 1
            scheduled = epoch + schedule[index]
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            status = client.post(path, payloads[index])
            # Latency from the *scheduled* time: if every sender was
            # busy when this slot came due, the wait counts against
            # the server (coordinated-omission correction).
            _observe(registry, status, time.perf_counter() - scheduled)
    finally:
        client.close()


def _guarded(target: Callable[..., None], args: tuple,
             failures: List[BaseException]) -> Callable[[], None]:
    """Wrap a worker target so an escaped exception is *recorded*.

    Worker threads are daemons; without this, a dying worker (a bug,
    or a transport failure class ``post`` doesn't map to status 0)
    would silently under-issue its share and the report would claim a
    clean run with fewer requests than configured.
    """

    def _run() -> None:
        try:
            target(*args)
        except BaseException as exc:
            failures.append(exc)

    return _run


def run_loadgen(config: LoadGenConfig,
                hostnames: Sequence[str]) -> Dict[str, object]:
    """Drive the server per ``config``; return the measured report.

    The report carries both loop-discipline inputs (mode, concurrency
    or rate, batch size) and outcomes: wall duration, request and
    hostname throughput, per-status counts, and p50/p90/p99/mean
    latency in seconds from the merged per-thread histograms.

    Raises ``RuntimeError`` when a worker thread died with requests
    unissued -- a partial report must never pass for a complete one.
    """
    config.validate()
    if not hostnames:
        raise ValueError("loadgen needs a non-empty hostname stream")
    path = "/annotate" if config.batch_size == 1 else "/annotate/batch"
    payloads = _request_payloads(hostnames, config.requests,
                                 config.batch_size)
    registries = [MetricsRegistry() for _ in range(config.concurrency)]
    threads: List[threading.Thread] = []
    failures: List[BaseException] = []
    started = time.perf_counter()
    if config.mode == "closed":
        for worker_id, registry in enumerate(registries):
            share = payloads[worker_id::config.concurrency]
            threads.append(threading.Thread(
                target=_guarded(_closed_worker,
                                (config, path, share, registry), failures),
                daemon=True))
    else:
        schedule = [index / config.rate for index in range(len(payloads))]
        next_index = [0]
        index_lock = threading.Lock()
        # Workers release off this barrier; its action stamps the
        # epoch once every sender is running, so request 0's schedule
        # slot is not pre-aged by thread startup.
        epoch_box: List[float] = []
        barrier = threading.Barrier(
            config.concurrency,
            action=lambda: epoch_box.append(time.perf_counter()))
        for registry in registries:
            threads.append(threading.Thread(
                target=_guarded(
                    _open_worker,
                    (config, path, payloads, schedule, barrier, epoch_box,
                     next_index, index_lock, registry), failures),
                daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    merged = MetricsRegistry()
    for registry in registries:
        merged.merge_snapshot(registry.snapshot())
    latency = merged.histogram("latency_seconds", LOADGEN_LATENCY_BOUNDS)
    requests = merged.counter("requests").value
    errors = merged.counter("errors").value
    ok = requests - errors
    if failures or requests != config.requests:
        detail = ("%s: %s" % (type(failures[0]).__name__, failures[0])
                  if failures else "no exception captured")
        raise RuntimeError(
            "loadgen worker died with requests unissued "
            "(%d of %d issued; %d worker failure(s); first: %s)"
            % (requests, config.requests, len(failures), detail))
    return {
        "mode": config.mode,
        "requests": requests,
        "ok": ok,
        "errors": errors,
        "concurrency": config.concurrency,
        "rate": config.rate if config.mode == "open" else None,
        "batch_size": config.batch_size,
        "hostnames_per_request": config.batch_size,
        "duration_s": duration,
        "throughput_rps": ok / duration if duration > 0 else 0.0,
        "hostnames_per_s": (ok * config.batch_size / duration
                            if duration > 0 else 0.0),
        "status": dict(merged.labelled("status").values),
        "latency_p50_s": latency.percentile(0.50),
        "latency_p90_s": latency.percentile(0.90),
        "latency_p99_s": latency.percentile(0.99),
        "latency_mean_s": latency.mean,
        "workload_fingerprint": workload_fingerprint(hostnames),
    }
