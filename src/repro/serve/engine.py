"""Batched bulk annotation: streaming input, process fan-out, sinks.

The engine turns an :class:`~repro.serve.service.AnnotationService`
into a pipeline for bulk workloads (the paper applies its conventions
to millions of PTR records):

* **streaming input** -- :func:`iter_hostnames` parses hostname files
  (or stdin) lazily: first whitespace-separated field per line, blank
  lines and ``#`` comments skipped.  Nothing is materialised, so memory
  stays bounded by the chunk window regardless of input size.
* **chunked fan-out** -- hostnames are grouped into fixed-size chunks;
  under a parallel :class:`~repro.core.parallel.ParallelConfig` the
  chunks flow through :func:`~repro.core.parallel.stream_map`, whose
  worker processes each build the dispatch index **once** (from the
  service's serialized conventions, via the pool initializer) and then
  annotate chunk after chunk.  Results come back in input order, so
  parallel output is byte-identical to serial output.
* **fault tolerance** -- with a
  :class:`~repro.core.resilience.RetryPolicy`, worker crashes rebuild
  the pool and replay in-flight chunks, transient faults retry with
  deterministic backoff, and a chunk that fails permanently is
  **dead-lettered**: recorded on :attr:`BulkAnnotator.dead_letters`,
  counted in the ``errors`` counter, and annotated as misses instead of
  killing the stream.  Retries bump the ``retries`` counter, so
  ``repro-hoiho serve-stats`` shows what a run survived.
* **checkpoint/resume** -- :meth:`BulkAnnotator.annotate_to` accepts a
  :class:`Checkpoint` sidecar recording the last durably-written chunk;
  an interrupted run resumed from the sidecar produces output
  byte-identical to an uninterrupted one.
* **sinks** -- TSV (``hostname<TAB>asn-or--``, the historical ``apply``
  format) and JSONL (one ``{"hostname":..., "asn":...}`` object per
  line) writers.

Worker processes keep no shared metrics; the parent folds each chunk's
aggregate outcome into the service's registry (requests / annotated /
misses), so live counters work in both modes.  Per-suffix counts and
latency histograms remain a per-request-API feature.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.parallel import ParallelConfig, stream_map
from repro.core.resilience import PoisonItemError, RetryPolicy
from repro.obs.metrics import merge_outcomes
from repro.obs.trace import NULL_TRACER, Captured, Tracer
from repro.serve.index import DispatchIndex
from repro.serve.service import AnnotationService

#: Hostnames per dispatched chunk; large enough to amortise pickling,
#: small enough that a handful of in-flight chunks stay cheap.
DEFAULT_CHUNK_SIZE = 2048

#: Fault-injection site label for the bulk annotation fan-out.
SITE_BULK_ANNOTATE = "bulk-annotate"


def iter_hostnames(lines: Iterable[str]) -> Iterator[str]:
    """Hostnames from raw input lines, lazily.

    Mirrors the CLI's historical parsing: first whitespace-separated
    field, blank lines and ``#`` comments skipped.
    """
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield line.split()[0]


def _chunked(items: Iterable[str], size: int) -> Iterator[List[str]]:
    """Fixed-size chunks of ``items`` (last one may be short)."""
    chunk: List[str] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


# -- worker side -------------------------------------------------------------

_WORKER_INDEX: Optional[DispatchIndex] = None


def _init_annotation_worker(conventions_json: str) -> None:
    """Pool initializer: build + warm the dispatch index once per
    worker process (module-level so the process backend can pickle the
    reference; the JSON ships once per worker, not per chunk)."""
    global _WORKER_INDEX
    from repro.core.io import conventions_from_json
    _WORKER_INDEX = DispatchIndex.from_result(
        conventions_from_json(conventions_json))
    _WORKER_INDEX.warm()


def _annotate_chunk(chunk: List[str],
                    ) -> List[Tuple[str, Optional[int]]]:
    """Annotate one chunk against the worker's index."""
    index = _WORKER_INDEX
    assert index is not None, "worker initializer did not run"
    return [(hostname, index.annotate(hostname)) for hostname in chunk]


def _annotate_chunk_traced(chunk: List[str]) -> Captured:
    """Like :func:`_annotate_chunk`, shipping a ``serve.chunk`` span
    home with the result for the coordinator to adopt."""
    tracer = Tracer()
    with tracer.span("serve.chunk", size=len(chunk)) as span:
        pairs = _annotate_chunk(chunk)
        span.set(annotated=sum(1 for _, asn in pairs if asn is not None))
    tracer.close()
    return Captured(pairs, tracer.export())


# -- sinks -------------------------------------------------------------------

def tsv_line(hostname: str, asn: Optional[int]) -> str:
    """``hostname<TAB>asn`` with ``-`` for unannotated (apply format)."""
    return "%s\t%s" % (hostname, asn if asn is not None else "-")


def jsonl_line(hostname: str, asn: Optional[int]) -> str:
    """One JSON object per hostname (``asn`` null when unannotated)."""
    return json.dumps({"asn": asn, "hostname": hostname}, sort_keys=True)


#: Output formats understood by :meth:`BulkAnnotator.annotate_to`.
SINKS: Dict[str, Callable[[str, Optional[int]], str]] = {
    "tsv": tsv_line,
    "jsonl": jsonl_line,
}


# -- checkpoint/resume -------------------------------------------------------

@dataclass
class DeadLetter:
    """One chunk that failed permanently and was annotated as misses."""

    index: int                 # chunk index in dispatch order
    hostnames: List[str]
    error: str                 # final underlying failure, stringified
    attempts: int


class Checkpoint:
    """A progress sidecar making :meth:`BulkAnnotator.annotate_to`
    resumable.

    The sidecar records, after each durably-flushed chunk, how many
    requests (== output lines; both sinks emit exactly one line per
    hostname) have been written.  On resume the engine truncates the
    output file back to that many lines -- discarding any partial tail
    a crash left behind -- skips that many input hostnames, and
    continues, so the final bytes are identical to an uninterrupted
    run.  Sidecar writes are atomic (tmp + ``os.replace``), so the
    recorded progress never overstates what the output file holds.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def load(self) -> Optional[Dict[str, object]]:
        """The recorded progress, or ``None`` when starting fresh.

        An unreadable sidecar is an error, not a silent restart -- a
        fresh run would overwrite output the operator asked to resume.
        """
        if not self.path.exists():
            return None
        with open(self.path, encoding="utf-8") as handle:
            state = json.load(handle)
        for key in ("requests", "annotated", "errors", "fmt"):
            if key not in state:
                raise ValueError("checkpoint %s is missing %r"
                                 % (self.path, key))
        return state

    def record(self, requests: int, annotated: int, errors: int,
               fmt: str, chunk_size: int, complete: bool = False) -> None:
        """Atomically persist progress through the last flushed chunk."""
        tmp = self.path.with_name(self.path.name + ".tmp.%d" % os.getpid())
        state = {"requests": requests, "annotated": annotated,
                 "errors": errors, "fmt": fmt, "chunk_size": chunk_size,
                 "complete": complete}
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)


def _resume_output(out: IO[str], lines_done: int) -> None:
    """Truncate ``out`` to its first ``lines_done`` lines and position
    the handle at the new end (discards any partial tail)."""
    if not out.seekable():
        raise ValueError("checkpoint resume needs a seekable output "
                         "(a file, not a pipe)")
    out.seek(0)
    for _ in range(lines_done):
        if not out.readline():
            raise ValueError(
                "output holds fewer lines than the checkpoint records "
                "(%d expected); wrong --out file?" % lines_done)
    # Text-mode readline() read-ahead leaves the underlying buffer past
    # the logical position; re-seeking to the told cookie resets it so
    # the no-arg truncate cuts at the right byte.
    out.seek(out.tell())
    out.truncate()


class BulkAnnotator:
    """Order-preserving bulk annotation over a service.

    ``parallel`` fans chunks out over worker processes; output is
    byte-identical to the serial path because chunks are dispatched and
    yielded in input order and every worker runs the same dispatch
    logic over the same serialized conventions.  ``retry`` arms the
    resilient dispatcher: worker loss replays in-flight chunks, and
    permanently failing chunks dead-letter as misses instead of
    aborting the stream -- still byte-identical for every chunk that
    survives.
    """

    def __init__(self, service: AnnotationService,
                 parallel: Optional[ParallelConfig] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 window: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 tracer=NULL_TRACER) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1, got %d" % chunk_size)
        self.service = service
        self.parallel = parallel or ParallelConfig.serial()
        self.chunk_size = chunk_size
        self.window = window
        self.retry = retry
        self.tracer = tracer
        self.dead_letters: List[DeadLetter] = []
        # The live ``serve.bulk`` span while a run is in flight, so the
        # parent-side fault hooks can attach events to it.
        self._span = None
        # Created up front so stats snapshots show zeros before (and
        # without) any faults.
        self._errors = service.metrics.counter("errors")
        self._retries = service.metrics.counter("retries")

    # -- fault hooks ---------------------------------------------------------

    def _on_poison(self, chunk: List[str],
                   error: PoisonItemError) -> List[Tuple[str, Optional[int]]]:
        """Dead-letter a permanently failed chunk as misses."""
        self.dead_letters.append(DeadLetter(
            index=error.index, hostnames=list(chunk),
            error="%s: %s" % (type(error.cause).__name__, error.cause),
            attempts=error.attempts))
        self._errors.inc(len(chunk))
        if self._span is not None:
            self._span.event("poisoned", site=SITE_BULK_ANNOTATE,
                             chunk=error.index, count=len(chunk))
        return [(hostname, None) for hostname in chunk]

    def _on_retry(self, chunk: List[str], attempts: int,
                  exc: Optional[BaseException]) -> None:
        self._retries.inc()
        if self._span is not None:
            self._span.event("retry", site=SITE_BULK_ANNOTATE,
                             attempts=attempts,
                             error=type(exc).__name__ if exc is not None
                             else "pool-loss")

    # -- annotation ----------------------------------------------------------

    def _annotate_chunks(self, hostnames: Iterable[str],
                         ) -> Iterator[List[Tuple[str, Optional[int]]]]:
        """Lazily yield per-chunk ``(hostname, annotation)`` lists in
        input order, folding aggregate metrics into the service.

        A ``serve.bulk`` span brackets the whole streaming run, opened
        and finished manually because the run is a generator: the span
        covers first pull to exhaustion, which includes consumer-side
        time between pulls -- the price of complete bracketing.
        Per-chunk ``serve.chunk`` spans record where annotation time
        went.
        """
        span = self.tracer.span("serve.bulk",
                                chunk_size=self.chunk_size,
                                parallel=self.parallel.is_parallel)
        self._span = span if self.tracer.enabled else None
        chunks_done = 0
        try:
            for pairs in self._dispatch_chunks(hostnames, span):
                chunks_done += 1
                yield pairs
        except BaseException as exc:
            span.fail(exc)
            raise
        finally:
            span.set(chunks=chunks_done)
            span.finish()
            self._span = None

    def _dispatch_chunks(self, hostnames: Iterable[str], span,
                         ) -> Iterator[List[Tuple[str, Optional[int]]]]:
        if not self.parallel.is_parallel:
            # Serial: straight through the service (full per-request
            # metrics, no serialization round-trip).  Worker faults
            # cannot happen in-process, so the retry policy is moot.
            yield from self._serial_chunks(hostnames)
            return
        chunks = _chunked(hostnames, self.chunk_size)
        worker = (_annotate_chunk_traced if self.tracer.enabled
                  else _annotate_chunk)
        results = stream_map(
            worker, chunks, self.parallel, window=self.window,
            initializer=_init_annotation_worker,
            initargs=(self.service.to_json(),),
            retry=self.retry, site=SITE_BULK_ANNOTATE,
            on_poison=self._on_poison if self.retry is not None else None,
            on_retry=self._on_retry if self.retry is not None else None)
        for result in results:
            if isinstance(result, Captured):
                self.tracer.adopt(result.spans, parent_id=span.span_id)
                pairs = result.value
            else:
                # Plain list: untraced worker, or an ``on_poison``
                # dead-letter substitute (those carry no spans).
                pairs = result
            annotated = sum(1 for _, asn in pairs if asn is not None)
            merge_outcomes(self.service.metrics, len(pairs), annotated)
            yield pairs

    def _serial_chunks(self, hostnames: Iterable[str],
                       ) -> Iterator[List[Tuple[str, Optional[int]]]]:
        """The in-process path, one ``serve.chunk`` span per chunk.

        The annotation work happens while *pulling* the next chunk from
        the lazy pair stream, so each span is opened before the pull
        and finished after it; the final span (the one that discovers
        end-of-input) is marked ``eos`` and measures only that
        discovery.
        """
        iterator = _chunked_pairs(
            self.service.annotate_pairs(hostnames), self.chunk_size)
        index = 0
        while True:
            chunk_span = self.tracer.span("serve.chunk", chunk=index)
            try:
                pairs = next(iterator)
            except StopIteration:
                chunk_span.set(eos=True)
                chunk_span.finish()
                return
            except BaseException as exc:
                chunk_span.fail(exc)
                chunk_span.finish()
                raise
            chunk_span.set(size=len(pairs),
                           annotated=sum(1 for _, asn in pairs
                                         if asn is not None))
            chunk_span.finish()
            yield pairs
            index += 1

    def annotate(self, hostnames: Iterable[str],
                 ) -> Iterator[Tuple[str, Optional[int]]]:
        """Lazily yield ``(hostname, annotation)`` in input order.

        In serial mode this is item-by-item lazy; in parallel mode the
        chunk window bounds how far ahead of the consumer input is
        pulled.  A traced serial run goes through the chunked path too
        (laziness coarsens to ``chunk_size``) so ``serve.bulk`` /
        ``serve.chunk`` spans exist regardless of the backend.
        """
        if not self.parallel.is_parallel and not self.tracer.enabled:
            yield from self.service.annotate_pairs(hostnames)
            return
        for pairs in self._annotate_chunks(hostnames):
            yield from pairs

    def annotate_lines(self, lines: Iterable[str],
                       ) -> Iterator[Tuple[str, Optional[int]]]:
        """Like :meth:`annotate`, parsing hostname-file lines first."""
        return self.annotate(iter_hostnames(lines))

    def annotate_to(self, hostnames: Iterable[str], out: IO[str],
                    fmt: str = "tsv",
                    checkpoint: Optional[Checkpoint] = None,
                    ) -> Dict[str, int]:
        """Stream annotations for ``hostnames`` into ``out``.

        With ``checkpoint``, progress is recorded after every flushed
        chunk and a prior interrupted run is resumed: already-written
        chunks are skipped (the input must be re-supplied from the
        start), any partial tail in ``out`` is truncated, and the final
        output is byte-identical to an uninterrupted run.

        Returns a summary: ``{"requests": n, "annotated": n,
        "misses": n, "errors": n}`` covering the whole logical run
        (resumed work included).
        """
        try:
            sink = SINKS[fmt]
        except KeyError:
            raise ValueError("unknown sink format %r (expected one of %s)"
                             % (fmt, ", ".join(sorted(SINKS))))
        requests = annotated = base_errors = 0
        if checkpoint is not None:
            state = checkpoint.load()
            if state is not None:
                if state["fmt"] != fmt:
                    raise ValueError(
                        "checkpoint %s was written as %r, cannot resume "
                        "as %r" % (checkpoint.path, state["fmt"], fmt))
                requests = int(state["requests"])  # == lines written
                annotated = int(state["annotated"])
                base_errors = int(state["errors"])
                _resume_output(out, requests)
                hostnames = _drop(hostnames, requests)
        dead_before = sum(len(d.hostnames) for d in self.dead_letters)
        errors = base_errors
        for pairs in self._annotate_chunks(hostnames):
            for hostname, asn in pairs:
                out.write(sink(hostname, asn) + "\n")
                requests += 1
                if asn is not None:
                    annotated += 1
            errors = base_errors + sum(
                len(d.hostnames) for d in self.dead_letters) - dead_before
            if checkpoint is not None:
                _flush(out)
                checkpoint.record(requests=requests, annotated=annotated,
                                  errors=errors, fmt=fmt,
                                  chunk_size=self.chunk_size)
        if checkpoint is not None:
            _flush(out)
            checkpoint.record(requests=requests, annotated=annotated,
                              errors=errors, fmt=fmt,
                              chunk_size=self.chunk_size, complete=True)
        return {"requests": requests, "annotated": annotated,
                "misses": requests - annotated, "errors": errors}


def _chunked_pairs(pairs: Iterable[Tuple[str, Optional[int]]],
                   size: int) -> Iterator[List[Tuple[str, Optional[int]]]]:
    """Chunk an annotated pair stream (the serial engine path)."""
    chunk: List[Tuple[str, Optional[int]]] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _drop(items: Iterable[str], count: int) -> Iterator[str]:
    """Skip the first ``count`` items of a (lazily consumed) iterable."""
    return itertools.islice(items, count, None)


def _flush(out: IO[str]) -> None:
    """Flush ``out`` as durably as the handle allows."""
    out.flush()
    fileno = getattr(out, "fileno", None)
    if fileno is not None:
        try:
            os.fsync(fileno())
        except (OSError, ValueError):
            pass  # StringIO and friends: flush() is the best we get
