"""Batched bulk annotation: streaming input, process fan-out, sinks.

The engine turns an :class:`~repro.serve.service.AnnotationService`
into a pipeline for bulk workloads (the paper applies its conventions
to millions of PTR records):

* **streaming input** -- :func:`iter_hostnames` parses hostname files
  (or stdin) lazily: first whitespace-separated field per line, blank
  lines and ``#`` comments skipped.  Nothing is materialised, so memory
  stays bounded by the chunk window regardless of input size.
* **chunked fan-out** -- hostnames are grouped into fixed-size chunks;
  under a parallel :class:`~repro.core.parallel.ParallelConfig` the
  chunks flow through :func:`~repro.core.parallel.stream_map`, whose
  worker processes each build the dispatch index **once** (from the
  service's serialized conventions, via the pool initializer) and then
  annotate chunk after chunk.  Results come back in input order, so
  parallel output is byte-identical to serial output.
* **sinks** -- TSV (``hostname<TAB>asn-or--``, the historical ``apply``
  format) and JSONL (one ``{"hostname":..., "asn":...}`` object per
  line) writers.

Worker processes keep no shared metrics; the parent folds each chunk's
aggregate outcome into the service's registry (requests / annotated /
misses), so live counters work in both modes.  Per-suffix counts and
latency histograms remain a per-request-API feature.
"""

from __future__ import annotations

import json
from typing import (
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.parallel import ParallelConfig, stream_map
from repro.serve.index import DispatchIndex
from repro.serve.metrics import merge_outcomes
from repro.serve.service import AnnotationService

#: Hostnames per dispatched chunk; large enough to amortise pickling,
#: small enough that a handful of in-flight chunks stay cheap.
DEFAULT_CHUNK_SIZE = 2048


def iter_hostnames(lines: Iterable[str]) -> Iterator[str]:
    """Hostnames from raw input lines, lazily.

    Mirrors the CLI's historical parsing: first whitespace-separated
    field, blank lines and ``#`` comments skipped.
    """
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield line.split()[0]


def _chunked(items: Iterable[str], size: int) -> Iterator[List[str]]:
    """Fixed-size chunks of ``items`` (last one may be short)."""
    chunk: List[str] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


# -- worker side -------------------------------------------------------------

_WORKER_INDEX: Optional[DispatchIndex] = None


def _init_annotation_worker(conventions_json: str) -> None:
    """Pool initializer: build + warm the dispatch index once per
    worker process (module-level so the process backend can pickle the
    reference; the JSON ships once per worker, not per chunk)."""
    global _WORKER_INDEX
    from repro.core.io import conventions_from_json
    _WORKER_INDEX = DispatchIndex.from_result(
        conventions_from_json(conventions_json))
    _WORKER_INDEX.warm()


def _annotate_chunk(chunk: List[str],
                    ) -> List[Tuple[str, Optional[int]]]:
    """Annotate one chunk against the worker's index."""
    index = _WORKER_INDEX
    assert index is not None, "worker initializer did not run"
    return [(hostname, index.annotate(hostname)) for hostname in chunk]


# -- sinks -------------------------------------------------------------------

def tsv_line(hostname: str, asn: Optional[int]) -> str:
    """``hostname<TAB>asn`` with ``-`` for unannotated (apply format)."""
    return "%s\t%s" % (hostname, asn if asn is not None else "-")


def jsonl_line(hostname: str, asn: Optional[int]) -> str:
    """One JSON object per hostname (``asn`` null when unannotated)."""
    return json.dumps({"asn": asn, "hostname": hostname}, sort_keys=True)


#: Output formats understood by :meth:`BulkAnnotator.annotate_to`.
SINKS: Dict[str, Callable[[str, Optional[int]], str]] = {
    "tsv": tsv_line,
    "jsonl": jsonl_line,
}


class BulkAnnotator:
    """Order-preserving bulk annotation over a service.

    ``parallel`` fans chunks out over worker processes; output is
    byte-identical to the serial path because chunks are dispatched and
    yielded in input order and every worker runs the same dispatch
    logic over the same serialized conventions.
    """

    def __init__(self, service: AnnotationService,
                 parallel: Optional[ParallelConfig] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 window: Optional[int] = None) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1, got %d" % chunk_size)
        self.service = service
        self.parallel = parallel or ParallelConfig.serial()
        self.chunk_size = chunk_size
        self.window = window

    def annotate(self, hostnames: Iterable[str],
                 ) -> Iterator[Tuple[str, Optional[int]]]:
        """Lazily yield ``(hostname, annotation)`` in input order."""
        if not self.parallel.is_parallel:
            # Serial: straight through the service (full per-request
            # metrics, no serialization round-trip).
            yield from self.service.annotate_pairs(hostnames)
            return
        chunks = _chunked(hostnames, self.chunk_size)
        results = stream_map(
            _annotate_chunk, chunks, self.parallel, window=self.window,
            initializer=_init_annotation_worker,
            initargs=(self.service.to_json(),))
        for pairs in results:
            annotated = sum(1 for _, asn in pairs if asn is not None)
            merge_outcomes(self.service.metrics, len(pairs), annotated)
            yield from pairs

    def annotate_lines(self, lines: Iterable[str],
                       ) -> Iterator[Tuple[str, Optional[int]]]:
        """Like :meth:`annotate`, parsing hostname-file lines first."""
        return self.annotate(iter_hostnames(lines))

    def annotate_to(self, hostnames: Iterable[str], out: IO[str],
                    fmt: str = "tsv") -> Dict[str, int]:
        """Stream annotations for ``hostnames`` into ``out``.

        Returns a summary: ``{"requests": n, "annotated": n,
        "misses": n}``.
        """
        try:
            sink = SINKS[fmt]
        except KeyError:
            raise ValueError("unknown sink format %r (expected one of %s)"
                             % (fmt, ", ".join(sorted(SINKS))))
        requests = annotated = 0
        for hostname, asn in self.annotate(hostnames):
            out.write(sink(hostname, asn) + "\n")
            requests += 1
            if asn is not None:
                annotated += 1
        return {"requests": requests, "annotated": annotated,
                "misses": requests - annotated}
