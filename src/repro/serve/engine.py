"""Batched bulk annotation: streaming input, process fan-out, sinks.

The engine turns an :class:`~repro.serve.service.AnnotationService`
into a pipeline for bulk workloads (the paper applies its conventions
to millions of PTR records):

* **streaming input** -- :func:`iter_hostnames` parses hostname files
  (or stdin) lazily: first whitespace-separated field per line, blank
  lines and ``#`` comments skipped.  Nothing is materialised, so memory
  stays bounded by the chunk window regardless of input size.
* **chunked fan-out** -- hostnames are grouped into chunks (a
  deterministic adaptive ramp by default, fixed-size on request); under
  a parallel :class:`~repro.core.parallel.ParallelConfig` the chunks
  flow through :func:`~repro.core.parallel.stream_map`, whose worker
  processes each hold the dispatch index: inherited prebuilt from the
  parent where the ``fork`` start method allows, else built **once**
  per worker from the service's serialized conventions via the pool
  initializer.  Each worker fronts its index with its own
  :class:`~repro.serve.memo.AnnotationMemo` (bulk PTR streams are as
  Zipf-skewed as live ones).  Results come back in input order, so
  parallel output is byte-identical to serial output.
* **cheap chunk IPC** -- untraced chunks ship to workers as a single
  packed ``bytes`` payload (newline-joined hostnames) and come back as
  one ``array('q')`` of ASNs (``-1`` = miss), one buffer each way
  instead of a per-hostname object graph; the parent retains each
  chunk's hostname list (results arrive in dispatch order, so a deque
  realigns them) and zips pairs back together.  Chunks that cannot be
  packed safely (non-string items, embedded newlines, unencodable
  surrogates) fall back to the legacy list payload per chunk, and
  ASNs too large for a signed 64-bit slot fall back to a plain list
  result -- both byte-identical, just slower.
* **fault tolerance** -- with a
  :class:`~repro.core.resilience.RetryPolicy`, worker crashes rebuild
  the pool and replay in-flight chunks, transient faults retry with
  deterministic backoff, and a chunk that fails permanently is
  **dead-lettered**: recorded on :attr:`BulkAnnotator.dead_letters`,
  counted in the ``errors`` counter, and annotated as misses instead of
  killing the stream.  Retries bump the ``retries`` counter, so
  ``repro-hoiho serve-stats`` shows what a run survived.
* **checkpoint/resume** -- :meth:`BulkAnnotator.annotate_to` accepts a
  :class:`Checkpoint` sidecar recording the last durably-written chunk;
  an interrupted run resumed from the sidecar produces output
  byte-identical to an uninterrupted one.
* **sinks** -- TSV (``hostname<TAB>asn-or--``, the historical ``apply``
  format) and JSONL (one ``{"hostname":..., "asn":...}`` object per
  line) writers.

Worker processes keep no shared metrics; the parent folds each chunk's
aggregate outcome into the service's registry (requests / annotated /
misses), so live counters work in both modes.  Per-suffix counts and
latency histograms remain a per-request-API feature.
"""

from __future__ import annotations

import itertools
import json
import os
from array import array
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.parallel import (
    ParallelConfig,
    adaptive_chunks,
    fork_inheritance_available,
    stream_map,
)
from repro.core.resilience import PoisonItemError, RetryPolicy
from repro.obs.metrics import merge_outcomes
from repro.obs.trace import NULL_TRACER, Captured, Tracer
from repro.serve.index import DispatchIndex, normalize_hostname
from repro.serve.memo import ABSENT, AnnotationMemo, DEFAULT_MEMO_SIZE
from repro.serve.service import AnnotationService

#: Hostnames per dispatched chunk when a fixed ``chunk_size`` is
#: requested (``chunk_size=None`` -- the default -- uses the adaptive
#: ramp from :func:`repro.core.parallel.adaptive_chunks` instead).
#: Large enough to amortise pickling, small enough that a handful of
#: in-flight chunks stay cheap.  The serial path also coarsens traced
#: laziness to this size.
DEFAULT_CHUNK_SIZE = 2048

#: Fault-injection site label for the bulk annotation fan-out.
SITE_BULK_ANNOTATE = "bulk-annotate"


def iter_hostnames(lines: Iterable[str]) -> Iterator[str]:
    """Hostnames from raw input lines, lazily.

    Mirrors the CLI's historical parsing: first whitespace-separated
    field, blank lines and ``#`` comments skipped.
    """
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield line.split()[0]


def _chunked(items: Iterable[str], size: int) -> Iterator[List[str]]:
    """Fixed-size chunks of ``items`` (last one may be short)."""
    chunk: List[str] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


# -- worker side -------------------------------------------------------------

#: Per-worker ``(index, memo)`` pair, set by the pool initializer.  The
#: worker memo caches bare ASNs (``None`` for misses) keyed on the
#: normalized hostname -- workers keep no per-suffix metrics, so the
#: service memo's ``(asn, suffix)`` entries would be dead weight here.
_WORKER_STATE: Optional[Tuple[DispatchIndex,
                              Optional[AnnotationMemo]]] = None

#: Fork-inheritance handoff.  Right before creating a pool, the parent
#: parks its prebuilt, warmed index here together with a dispatch-unique
#: token; under the ``fork`` start method every worker inherits the
#: globals and the initializer adopts the index (zero per-worker parse
#: or compile).  Under ``spawn``/``forkserver`` the child re-imports
#: this module, sees ``None``, and falls back to the shipped JSON.  Two
#: interleaved bulk runs in one process overwrite the parking spot; the
#: token mismatch then routes later-forked workers to the JSON fallback
#: -- slower, never wrong.
_FORK_TOKEN: Optional[Tuple[int, int]] = None
_FORK_INDEX: Optional[DispatchIndex] = None
_fork_tokens = itertools.count(1)


def _init_annotation_worker(conventions_json: str,
                            fork_token: Optional[Tuple[int, int]] = None,
                            memo_size: int = DEFAULT_MEMO_SIZE) -> None:
    """Pool initializer: adopt the fork-inherited index when the token
    matches, else build + warm one from ``conventions_json`` (which
    ships once per worker, not per chunk)."""
    global _WORKER_STATE
    if fork_token is not None and fork_token == _FORK_TOKEN \
            and _FORK_INDEX is not None:
        index = _FORK_INDEX
    else:
        from repro.core.io import conventions_from_json
        index = DispatchIndex.from_result(
            conventions_from_json(conventions_json))
        index.warm()
    _WORKER_STATE = (index,
                     AnnotationMemo(memo_size) if memo_size else None)


def _pack_chunk(chunk: List[str]) -> Union[bytes, List[str]]:
    """One UTF-8 buffer for the whole chunk, or the chunk itself when
    packing would be lossy (non-``str`` items, embedded newlines,
    surrogates UTF-8 cannot encode)."""
    for hostname in chunk:
        if type(hostname) is not str or "\n" in hostname:
            return chunk
    try:
        return "\n".join(chunk).encode("utf-8")
    except UnicodeEncodeError:
        return chunk


def _unpack_item(item: Union[bytes, List[str]]) -> List[str]:
    """The hostname list behind a dispatched payload (chunks are never
    empty, so ``b"".split`` ambiguity cannot arise)."""
    if isinstance(item, bytes):
        return item.decode("utf-8").split("\n")
    return list(item)


def _annotate_one(hostname: object, index: DispatchIndex,
                  memo: Optional[AnnotationMemo]) -> Optional[int]:
    """One worker-side annotation through the memo front."""
    normalized = normalize_hostname(hostname)
    if normalized is None:
        return None
    if memo is None:
        plan = index.lookup_normalized(normalized)
        return plan.extract(normalized) if plan is not None else None
    asn = memo.data.get(normalized, ABSENT)
    if asn is ABSENT:
        plan = index.lookup_normalized(normalized)
        asn = plan.extract(normalized) if plan is not None else None
        memo.put(normalized, asn)
    return asn


def _annotate_chunk(payload: Union[bytes, List[str]],
                    ) -> Union["array", List]:
    """Annotate one dispatched payload against the worker's state.

    A packed ``bytes`` payload returns an ``array('q')`` of ASNs with
    ``-1`` for misses/malformed (extracted ASNs are non-negative, so
    the sentinel cannot collide) -- one pickling buffer instead of a
    list of tuples.  An ASN beyond the signed-64-bit range falls back
    to a plain ``Optional[int]`` list.  A legacy list payload returns
    the historical ``(hostname, asn)`` pairs.
    """
    state = _WORKER_STATE
    assert state is not None, "worker initializer did not run"
    index, memo = state
    if not isinstance(payload, bytes):
        return [(hostname, _annotate_one(hostname, index, memo))
                for hostname in payload]
    asns = [_annotate_one(hostname, index, memo)
            for hostname in payload.decode("utf-8").split("\n")]
    try:
        return array("q", (-1 if asn is None else asn for asn in asns))
    except OverflowError:
        return asns


def _annotate_chunk_traced(chunk: List[str]) -> Captured:
    """Like :func:`_annotate_chunk`, shipping a ``serve.chunk`` span
    home with the result for the coordinator to adopt.  Traced runs
    always dispatch legacy list payloads (spans want hostnames, not
    packed buffers)."""
    tracer = Tracer()
    with tracer.span("serve.chunk", size=len(chunk)) as span:
        pairs = _annotate_chunk(chunk)
        span.set(annotated=sum(1 for _, asn in pairs if asn is not None))
    tracer.close()
    return Captured(pairs, tracer.export())


# -- sinks -------------------------------------------------------------------

def tsv_line(hostname: str, asn: Optional[int]) -> str:
    """``hostname<TAB>asn`` with ``-`` for unannotated (apply format)."""
    return "%s\t%s" % (hostname, asn if asn is not None else "-")


def jsonl_line(hostname: str, asn: Optional[int]) -> str:
    """One JSON object per hostname (``asn`` null when unannotated)."""
    return json.dumps({"asn": asn, "hostname": hostname}, sort_keys=True)


#: Output formats understood by :meth:`BulkAnnotator.annotate_to`.
SINKS: Dict[str, Callable[[str, Optional[int]], str]] = {
    "tsv": tsv_line,
    "jsonl": jsonl_line,
}


# -- checkpoint/resume -------------------------------------------------------

@dataclass
class DeadLetter:
    """One chunk that failed permanently and was annotated as misses."""

    index: int                 # chunk index in dispatch order
    hostnames: List[str]
    error: str                 # final underlying failure, stringified
    attempts: int


class Checkpoint:
    """A progress sidecar making :meth:`BulkAnnotator.annotate_to`
    resumable.

    The sidecar records, after each durably-flushed chunk, how many
    requests (== output lines; both sinks emit exactly one line per
    hostname) have been written.  On resume the engine truncates the
    output file back to that many lines -- discarding any partial tail
    a crash left behind -- skips that many input hostnames, and
    continues, so the final bytes are identical to an uninterrupted
    run.  Sidecar writes are atomic (tmp + ``os.replace``), so the
    recorded progress never overstates what the output file holds.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def load(self) -> Optional[Dict[str, object]]:
        """The recorded progress, or ``None`` when starting fresh.

        An unreadable sidecar is an error, not a silent restart -- a
        fresh run would overwrite output the operator asked to resume.
        """
        if not self.path.exists():
            return None
        with open(self.path, encoding="utf-8") as handle:
            state = json.load(handle)
        for key in ("requests", "annotated", "errors", "fmt"):
            if key not in state:
                raise ValueError("checkpoint %s is missing %r"
                                 % (self.path, key))
        return state

    def record(self, requests: int, annotated: int, errors: int,
               fmt: str, chunk_size: int, complete: bool = False) -> None:
        """Atomically persist progress through the last flushed chunk."""
        tmp = self.path.with_name(self.path.name + ".tmp.%d" % os.getpid())
        state = {"requests": requests, "annotated": annotated,
                 "errors": errors, "fmt": fmt, "chunk_size": chunk_size,
                 "complete": complete}
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)


def _resume_output(out: IO[str], lines_done: int) -> None:
    """Truncate ``out`` to its first ``lines_done`` lines and position
    the handle at the new end (discards any partial tail)."""
    if not out.seekable():
        raise ValueError("checkpoint resume needs a seekable output "
                         "(a file, not a pipe)")
    out.seek(0)
    for _ in range(lines_done):
        if not out.readline():
            raise ValueError(
                "output holds fewer lines than the checkpoint records "
                "(%d expected); wrong --out file?" % lines_done)
    # Text-mode readline() read-ahead leaves the underlying buffer past
    # the logical position; re-seeking to the told cookie resets it so
    # the no-arg truncate cuts at the right byte.
    out.seek(out.tell())
    out.truncate()


class BulkAnnotator:
    """Order-preserving bulk annotation over a service.

    ``parallel`` fans chunks out over worker processes; output is
    byte-identical to the serial path because chunks are dispatched and
    yielded in input order and every worker runs the same dispatch
    logic over the same serialized conventions.  ``retry`` arms the
    resilient dispatcher: worker loss replays in-flight chunks, and
    permanently failing chunks dead-letter as misses instead of
    aborting the stream -- still byte-identical for every chunk that
    survives.
    """

    def __init__(self, service: AnnotationService,
                 parallel: Optional[ParallelConfig] = None,
                 chunk_size: Optional[int] = None,
                 window: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 tracer=NULL_TRACER) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1, got %d" % chunk_size)
        self.service = service
        self.parallel = parallel or ParallelConfig.serial()
        self.chunk_size = chunk_size
        self.window = window
        self.retry = retry
        self.tracer = tracer
        self.dead_letters: List[DeadLetter] = []
        # The live ``serve.bulk`` span while a run is in flight, so the
        # parent-side fault hooks can attach events to it.
        self._span = None
        # Created up front so stats snapshots show zeros before (and
        # without) any faults.
        self._errors = service.metrics.counter("errors")
        self._retries = service.metrics.counter("retries")

    # -- fault hooks ---------------------------------------------------------

    def _on_poison(self, item: Union[bytes, List[str]],
                   error: PoisonItemError) -> List[Tuple[str, Optional[int]]]:
        """Dead-letter a permanently failed chunk as misses.  The
        dispatched item may be a packed payload; the dead letter always
        records the real hostnames."""
        hostnames = _unpack_item(item)
        self.dead_letters.append(DeadLetter(
            index=error.index, hostnames=hostnames,
            error="%s: %s" % (type(error.cause).__name__, error.cause),
            attempts=error.attempts))
        self._errors.inc(len(hostnames))
        if self._span is not None:
            self._span.event("poisoned", site=SITE_BULK_ANNOTATE,
                             chunk=error.index, count=len(hostnames))
        return [(hostname, None) for hostname in hostnames]

    def _on_retry(self, chunk: List[str], attempts: int,
                  exc: Optional[BaseException]) -> None:
        self._retries.inc()
        if self._span is not None:
            self._span.event("retry", site=SITE_BULK_ANNOTATE,
                             attempts=attempts,
                             error=type(exc).__name__ if exc is not None
                             else "pool-loss")

    # -- annotation ----------------------------------------------------------

    def _annotate_chunks(self, hostnames: Iterable[str],
                         ) -> Iterator[List[Tuple[str, Optional[int]]]]:
        """Lazily yield per-chunk ``(hostname, annotation)`` lists in
        input order, folding aggregate metrics into the service.

        A ``serve.bulk`` span brackets the whole streaming run, opened
        and finished manually because the run is a generator: the span
        covers first pull to exhaustion, which includes consumer-side
        time between pulls -- the price of complete bracketing.
        Per-chunk ``serve.chunk`` spans record where annotation time
        went.
        """
        span = self.tracer.span(
            "serve.bulk",
            chunk_size=self.chunk_size if self.chunk_size is not None
            else "adaptive",
            parallel=self.parallel.is_parallel)
        self._span = span if self.tracer.enabled else None
        chunks_done = 0
        try:
            for pairs in self._dispatch_chunks(hostnames, span):
                chunks_done += 1
                yield pairs
        except BaseException as exc:
            span.fail(exc)
            raise
        finally:
            span.set(chunks=chunks_done)
            memo = self.service.memo
            if memo is not None:
                span.set(memo_hits=memo.hits, memo_misses=memo.misses,
                         memo_evictions=memo.evictions)
            span.finish()
            self._span = None

    def _chunk_stream(self, hostnames: Iterable[str],
                      ) -> Iterator[List[str]]:
        """Chunks under the configured policy: fixed size when one was
        requested, the deterministic adaptive ramp otherwise."""
        if self.chunk_size is not None:
            return _chunked(hostnames, self.chunk_size)
        return adaptive_chunks(hostnames)

    def _dispatch_chunks(self, hostnames: Iterable[str], span,
                         ) -> Iterator[List[Tuple[str, Optional[int]]]]:
        if not self.parallel.is_parallel:
            # Serial: straight through the service (full per-request
            # metrics, no serialization round-trip).  Worker faults
            # cannot happen in-process, so the retry policy is moot.
            yield from self._serial_chunks(hostnames)
            return
        global _FORK_TOKEN, _FORK_INDEX
        chunks = self._chunk_stream(hostnames)
        packed = not self.tracer.enabled
        if packed:
            # Retain each chunk's hostname list parent-side; results
            # come back strictly in dispatch order (stream_map's
            # contract, faults included), so a deque realigns them.
            retained: Optional[deque] = deque()
            worker: Callable = _annotate_chunk

            def payloads() -> Iterator[Union[bytes, List[str]]]:
                for chunk in chunks:
                    retained.append(chunk)
                    yield _pack_chunk(chunk)

            items: Iterable = payloads()
        else:
            retained = None
            worker = _annotate_chunk_traced
            items = chunks
        token = None
        if fork_inheritance_available():
            # Park the live index for fork inheritance: workers adopt
            # the parent's already-built, already-fused trie instead of
            # re-parsing conventions JSON.
            index = self.service.index
            index.warm()
            token = (os.getpid(), next(_fork_tokens))
            _FORK_INDEX = index
            _FORK_TOKEN = token
        span.set(payloads="packed" if packed else "list",
                 fork_shared=token is not None)
        try:
            results = stream_map(
                worker, items, self.parallel, window=self.window,
                initializer=_init_annotation_worker,
                initargs=(self.service.to_json(), token,
                          self.service.memo_size),
                retry=self.retry, site=SITE_BULK_ANNOTATE,
                on_poison=self._on_poison if self.retry is not None
                else None,
                on_retry=self._on_retry if self.retry is not None
                else None)
            for result in results:
                chunk = retained.popleft() if retained is not None else None
                if isinstance(result, Captured):
                    self.tracer.adopt(result.spans, parent_id=span.span_id)
                    pairs = result.value
                elif isinstance(result, array):
                    # Packed result: ASNs only, -1 = miss.
                    pairs = [(hostname, None if asn < 0 else asn)
                             for hostname, asn in zip(chunk, result)]
                elif result and not isinstance(result[0], tuple):
                    # Overflow fallback: plain Optional[int] list.
                    pairs = list(zip(chunk, result))
                else:
                    # Pairs: legacy list payload, or an ``on_poison``
                    # dead-letter substitute (those carry no spans).
                    pairs = result
                annotated = sum(1 for _, asn in pairs if asn is not None)
                merge_outcomes(self.service.metrics, len(pairs), annotated)
                yield pairs
        finally:
            if token is not None and _FORK_TOKEN == token:
                _FORK_TOKEN = None
                _FORK_INDEX = None

    def _serial_chunks(self, hostnames: Iterable[str],
                       ) -> Iterator[List[Tuple[str, Optional[int]]]]:
        """The in-process path, one ``serve.chunk`` span per chunk.

        The annotation work happens while *pulling* the next chunk from
        the lazy pair stream, so each span is opened before the pull
        and finished after it; the final span (the one that discovers
        end-of-input) is marked ``eos`` and measures only that
        discovery.
        """
        iterator = _chunked_pairs(
            self.service.annotate_pairs(hostnames),
            self.chunk_size if self.chunk_size is not None
            else DEFAULT_CHUNK_SIZE)
        index = 0
        while True:
            chunk_span = self.tracer.span("serve.chunk", chunk=index)
            try:
                pairs = next(iterator)
            except StopIteration:
                chunk_span.set(eos=True)
                chunk_span.finish()
                return
            except BaseException as exc:
                chunk_span.fail(exc)
                chunk_span.finish()
                raise
            chunk_span.set(size=len(pairs),
                           annotated=sum(1 for _, asn in pairs
                                         if asn is not None))
            chunk_span.finish()
            yield pairs
            index += 1

    def annotate(self, hostnames: Iterable[str],
                 ) -> Iterator[Tuple[str, Optional[int]]]:
        """Lazily yield ``(hostname, annotation)`` in input order.

        In serial mode this is item-by-item lazy; in parallel mode the
        chunk window bounds how far ahead of the consumer input is
        pulled.  A traced serial run goes through the chunked path too
        (laziness coarsens to ``chunk_size``) so ``serve.bulk`` /
        ``serve.chunk`` spans exist regardless of the backend.
        """
        if not self.parallel.is_parallel and not self.tracer.enabled:
            yield from self.service.annotate_pairs(hostnames)
            return
        for pairs in self._annotate_chunks(hostnames):
            yield from pairs

    def annotate_lines(self, lines: Iterable[str],
                       ) -> Iterator[Tuple[str, Optional[int]]]:
        """Like :meth:`annotate`, parsing hostname-file lines first."""
        return self.annotate(iter_hostnames(lines))

    def annotate_to(self, hostnames: Iterable[str], out: IO[str],
                    fmt: str = "tsv",
                    checkpoint: Optional[Checkpoint] = None,
                    ) -> Dict[str, int]:
        """Stream annotations for ``hostnames`` into ``out``.

        With ``checkpoint``, progress is recorded after every flushed
        chunk and a prior interrupted run is resumed: already-written
        chunks are skipped (the input must be re-supplied from the
        start), any partial tail in ``out`` is truncated, and the final
        output is byte-identical to an uninterrupted run.

        Returns a summary: ``{"requests": n, "annotated": n,
        "misses": n, "errors": n}`` covering the whole logical run
        (resumed work included).
        """
        try:
            sink = SINKS[fmt]
        except KeyError:
            raise ValueError("unknown sink format %r (expected one of %s)"
                             % (fmt, ", ".join(sorted(SINKS))))
        requests = annotated = base_errors = 0
        if checkpoint is not None:
            state = checkpoint.load()
            if state is not None:
                if state["fmt"] != fmt:
                    raise ValueError(
                        "checkpoint %s was written as %r, cannot resume "
                        "as %r" % (checkpoint.path, state["fmt"], fmt))
                requests = int(state["requests"])  # == lines written
                annotated = int(state["annotated"])
                base_errors = int(state["errors"])
                _resume_output(out, requests)
                hostnames = _drop(hostnames, requests)
        dead_before = sum(len(d.hostnames) for d in self.dead_letters)
        errors = base_errors
        for pairs in self._annotate_chunks(hostnames):
            for hostname, asn in pairs:
                out.write(sink(hostname, asn) + "\n")
                requests += 1
                if asn is not None:
                    annotated += 1
            errors = base_errors + sum(
                len(d.hostnames) for d in self.dead_letters) - dead_before
            if checkpoint is not None:
                _flush(out)
                checkpoint.record(requests=requests, annotated=annotated,
                                  errors=errors, fmt=fmt,
                                  chunk_size=self.chunk_size or 0)
        if checkpoint is not None:
            _flush(out)
            checkpoint.record(requests=requests, annotated=annotated,
                              errors=errors, fmt=fmt,
                              chunk_size=self.chunk_size or 0,
                              complete=True)
        return {"requests": requests, "annotated": annotated,
                "misses": requests - annotated, "errors": errors}


def _chunked_pairs(pairs: Iterable[Tuple[str, Optional[int]]],
                   size: int) -> Iterator[List[Tuple[str, Optional[int]]]]:
    """Chunk an annotated pair stream (the serial engine path)."""
    chunk: List[Tuple[str, Optional[int]]] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _drop(items: Iterable[str], count: int) -> Iterator[str]:
    """Skip the first ``count`` items of a (lazily consumed) iterable."""
    return itertools.islice(items, count, None)


def _flush(out: IO[str]) -> None:
    """Flush ``out`` as durably as the handle allows."""
    out.flush()
    fileno = getattr(out, "fileno", None)
    if fileno is not None:
        try:
            os.fsync(fileno())
        except (OSError, ValueError):
            pass  # StringIO and friends: flush() is the best we get
