"""The embeddable annotation service: lifecycle, per-request API, metrics.

:class:`AnnotationService` is the serving counterpart to the learning
engine's :class:`~repro.core.hoiho.Hoiho`: where Hoiho turns training
pairs into a :class:`HoihoResult`, the service turns a ``HoihoResult``
into an always-on annotator with

* **lifecycle** -- load from an in-memory result, a conventions JSON
  string/file (the ``repro-hoiho learn --save`` format), or an
  :class:`~repro.store.ArtifactStore` entry; ``warm()`` pre-compiles
  every plan; ``reload_*`` swaps in a new convention set without
  recreating the service (in-flight callers keep the old index);
* **per-request API** -- :meth:`annotate_one` / :meth:`annotate_batch`
  / :meth:`annotate_pairs`, all tolerant of malformed hostnames
  (``None``/empty/non-string inputs annotate as ``None`` and count as
  ``malformed``, they never raise);
* **observability** -- every request updates the service's
  :class:`~repro.obs.metrics.MetricsRegistry`: ``requests``,
  ``annotated``, ``misses`` (known suffix, no pattern match, plus
  unknown suffixes), ``malformed``, per-suffix ``extracted`` counts,
  and a ``latency_seconds`` histogram.

Bulk file/stdin workloads should go through
:class:`~repro.serve.engine.BulkAnnotator`, which wraps a service in
chunked streaming and optional process fan-out.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.hoiho import HoihoResult
from repro.core.io import conventions_from_json, conventions_to_json
from repro.serve.index import DispatchIndex, normalize_hostname
from repro.obs.metrics import MetricsRegistry
from repro.store import KIND_HOIHO, ArtifactStore


class AnnotationService:
    """Hostname -> ASN annotation over a learned convention set.

    >>> from repro.core.hoiho import Hoiho
    >>> from repro.core.types import TrainingItem
    >>> result = Hoiho().run([
    ...     TrainingItem("as%d.pop%d.example.com" % (a, i % 3), a)
    ...     for i, a in enumerate([3356, 1299, 174, 2914, 6453])])
    >>> service = AnnotationService(result)
    >>> service.annotate_one("as8075.pop9.example.com")
    8075
    >>> service.annotate_one("AS8075.pop9.Example.Com.")   # normalised
    8075
    >>> service.annotate_one("www.unknown.net") is None
    True
    >>> service.metrics.counter("requests").value
    3
    """

    def __init__(self, result: HoihoResult,
                 metrics: Optional[MetricsRegistry] = None,
                 usable_only: bool = False) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.usable_only = usable_only
        self.result = result
        self._index = DispatchIndex.from_result(result, usable_only)
        # Created up front so snapshots show zeros before traffic.
        self._requests = self.metrics.counter("requests")
        self._annotated = self.metrics.counter("annotated")
        self._misses = self.metrics.counter("misses")
        self._malformed = self.metrics.counter("malformed")
        self._extracted = self.metrics.labelled("extracted")
        self._latency = self.metrics.histogram("latency_seconds")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def from_json(cls, text: str, **kwargs: object) -> "AnnotationService":
        """Build from :func:`conventions_to_json` output."""
        return cls(conventions_from_json(text), **kwargs)  # type: ignore

    @classmethod
    def from_json_file(cls, path: str,
                       **kwargs: object) -> "AnnotationService":
        """Build from a conventions JSON file (``learn --save``)."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read(), **kwargs)

    @classmethod
    def from_store(cls, store: ArtifactStore, payload: Mapping,
                   **kwargs: object) -> "AnnotationService":
        """Build from a cached learning result in ``store``.

        ``payload`` is the fingerprint payload the result was stored
        under (see ``_learn_items`` in :mod:`repro.cli`).  Raises
        :class:`LookupError` when the store has no such artifact.
        """
        result = store.get(KIND_HOIHO, payload)
        if result is None:
            raise LookupError(
                "no cached conventions for payload (fingerprint %s)"
                % store.fingerprint(payload))
        return cls(result, **kwargs)  # type: ignore[arg-type]

    def to_json(self) -> str:
        """The current convention set, serialized."""
        return conventions_to_json(self.result)

    @property
    def index(self) -> DispatchIndex:
        """The live dispatch index."""
        return self._index

    def warm(self) -> int:
        """Pre-compile every plan; returns the number of plans."""
        return self._index.warm()

    def reload_result(self, result: HoihoResult) -> int:
        """Swap in a new convention set; returns the new plan count.

        The replacement index is fully built (and warmed) before the
        swap, so concurrent readers only ever see a complete index.
        """
        index = DispatchIndex.from_result(result, self.usable_only)
        index.warm()
        self.result = result
        self._index = index
        return len(index)

    def reload_json(self, text: str) -> int:
        """Reload from serialized conventions."""
        return self.reload_result(conventions_from_json(text))

    def reload_json_file(self, path: str) -> int:
        """Reload from a conventions JSON file."""
        with open(path, encoding="utf-8") as handle:
            return self.reload_json(handle.read())

    def reload_store(self, store: ArtifactStore, payload: Mapping) -> int:
        """Reload from a cached learning result in ``store``."""
        result = store.get(KIND_HOIHO, payload)
        if result is None:
            raise LookupError(
                "no cached conventions for payload (fingerprint %s)"
                % store.fingerprint(payload))
        return self.reload_result(result)  # type: ignore[arg-type]

    # -- per-request API ---------------------------------------------------

    def annotate_one(self, hostname: object) -> Optional[int]:
        """Annotate one hostname; ``None`` on miss or malformed input."""
        start = time.perf_counter()
        self._requests.inc()
        normalized = normalize_hostname(hostname)
        if normalized is None:
            self._malformed.inc()
            self._misses.inc()
            self._latency.observe(time.perf_counter() - start)
            return None
        plan = self._index.lookup_normalized(normalized)
        asn = plan.extract(normalized) if plan is not None else None
        if asn is None:
            self._misses.inc()
        else:
            self._annotated.inc()
            self._extracted.inc(plan.suffix)
        self._latency.observe(time.perf_counter() - start)
        return asn

    def annotate_batch(self,
                       hostnames: Iterable[object]) -> List[Optional[int]]:
        """Annotate many hostnames, preserving input order."""
        return [self.annotate_one(hostname) for hostname in hostnames]

    def annotate_pairs(self, hostnames: Iterable[str],
                       ) -> Iterator[Tuple[str, Optional[int]]]:
        """Lazily yield ``(hostname, annotation)`` in input order."""
        for hostname in hostnames:
            yield hostname, self.annotate_one(hostname)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready metrics snapshot (see ``MetricsRegistry``)."""
        snapshot = self.metrics.snapshot()
        snapshot["suffixes_indexed"] = len(self._index)
        return snapshot

    def __repr__(self) -> str:
        return "AnnotationService(%d suffixes, %d requests)" % (
            len(self._index), self._requests.value)
