"""The embeddable annotation service: lifecycle, per-request API, metrics.

:class:`AnnotationService` is the serving counterpart to the learning
engine's :class:`~repro.core.hoiho.Hoiho`: where Hoiho turns training
pairs into a :class:`HoihoResult`, the service turns a ``HoihoResult``
into an always-on annotator with

* **lifecycle** -- load from an in-memory result, a conventions JSON
  string/file (the ``repro-hoiho learn --save`` format), or an
  :class:`~repro.store.ArtifactStore` entry; ``warm()`` pre-compiles
  every plan; ``reload_*`` swaps in a new convention set without
  recreating the service (in-flight callers keep the old index);
* **per-request API** -- :meth:`annotate_one` / :meth:`annotate_batch`
  / :meth:`annotate_pairs`, all tolerant of malformed hostnames
  (``None``/empty/non-string inputs annotate as ``None`` and count as
  ``malformed``, they never raise);
* **observability** -- every request updates the service's
  :class:`~repro.obs.metrics.MetricsRegistry`: ``requests``,
  ``annotated``, ``misses`` (known suffix, no pattern match, plus
  unknown suffixes), ``malformed``, per-suffix ``extracted`` counts,
  a ``latency_seconds`` histogram, and the memo's
  ``memo_hits``/``memo_misses``/``memo_evictions``;
* **memoization** -- a bounded LRU
  :class:`~repro.serve.memo.AnnotationMemo` keyed on the normalized
  hostname fronts the trie + regex pipeline (production PTR streams
  are Zipf-skewed, so repeats dominate).  The live ``(index, memo)``
  pair is published as one tuple, read once per request, and swapped
  as one assignment on ``reload_*`` -- a request always sees a
  consistent pair and a reload atomically invalidates the memo.

Latency semantics: :meth:`annotate_one` records its own wall time per
request.  :meth:`annotate_batch` runs a tight aggregated loop for
throughput and records the batch's *amortised per-item* latency once
per item -- the histogram still counts every request, but batch
percentiles describe the mean item, not the slowest one.

Bulk file/stdin workloads should go through
:class:`~repro.serve.engine.BulkAnnotator`, which wraps a service in
chunked streaming and optional process fan-out.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.hoiho import HoihoResult
from repro.core.io import conventions_from_json, conventions_to_json
from repro.serve.index import DispatchIndex, normalize_hostname
from repro.serve.memo import ABSENT, AnnotationMemo, DEFAULT_MEMO_SIZE
from repro.obs.metrics import MetricsRegistry
from repro.store import KIND_HOIHO, ArtifactStore

#: Shared ``(asn, suffix)`` entry for malformed inputs and plain
#: misses -- one allocation for the whole module.
_NO_MATCH: Tuple[None, None] = (None, None)


class AnnotationService:
    """Hostname -> ASN annotation over a learned convention set.

    >>> from repro.core.hoiho import Hoiho
    >>> from repro.core.types import TrainingItem
    >>> result = Hoiho().run([
    ...     TrainingItem("as%d.pop%d.example.com" % (a, i % 3), a)
    ...     for i, a in enumerate([3356, 1299, 174, 2914, 6453])])
    >>> service = AnnotationService(result)
    >>> service.annotate_one("as8075.pop9.example.com")
    8075
    >>> service.annotate_one("AS8075.pop9.Example.Com.")   # normalised
    8075
    >>> service.annotate_one("www.unknown.net") is None
    True
    >>> service.metrics.counter("requests").value
    3
    """

    def __init__(self, result: HoihoResult,
                 metrics: Optional[MetricsRegistry] = None,
                 usable_only: bool = False,
                 memo_size: int = DEFAULT_MEMO_SIZE,
                 fuse: bool = True) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.usable_only = usable_only
        self.memo_size = memo_size
        self.fuse = fuse
        self.result = result
        self._index = DispatchIndex.from_result(result, usable_only,
                                                fuse=fuse)
        # The authoritative (index, memo) pair: read once per request,
        # swapped as one assignment on reload, so every request sees a
        # consistent index/memo combination (GIL-atomic either way).
        self._state: Tuple[DispatchIndex, Optional[AnnotationMemo]] = (
            self._index,
            AnnotationMemo(memo_size) if memo_size else None)
        # Counters retired from memos replaced by reloads, so memo
        # totals stay cumulative over the service's lifetime.
        self._memo_retired = {"hits": 0, "misses": 0, "evictions": 0}
        # Created up front so snapshots show zeros before traffic.
        self._requests = self.metrics.counter("requests")
        self._annotated = self.metrics.counter("annotated")
        self._misses = self.metrics.counter("misses")
        self._malformed = self.metrics.counter("malformed")
        self._extracted = self.metrics.labelled("extracted")
        self._latency = self.metrics.histogram("latency_seconds")
        self._memo_hits = self.metrics.counter("memo_hits")
        self._memo_misses = self.metrics.counter("memo_misses")
        self._memo_evictions = self.metrics.counter("memo_evictions")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def from_json(cls, text: str, **kwargs: object) -> "AnnotationService":
        """Build from :func:`conventions_to_json` output."""
        return cls(conventions_from_json(text), **kwargs)  # type: ignore

    @classmethod
    def from_json_file(cls, path: str,
                       **kwargs: object) -> "AnnotationService":
        """Build from a conventions JSON file (``learn --save``)."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read(), **kwargs)

    @classmethod
    def from_store(cls, store: ArtifactStore, payload: Mapping,
                   **kwargs: object) -> "AnnotationService":
        """Build from a cached learning result in ``store``.

        ``payload`` is the fingerprint payload the result was stored
        under (see ``_learn_items`` in :mod:`repro.cli`).  Raises
        :class:`LookupError` when the store has no such artifact.
        """
        result = store.get(KIND_HOIHO, payload)
        if result is None:
            raise LookupError(
                "no cached conventions for payload (fingerprint %s)"
                % store.fingerprint(payload))
        return cls(result, **kwargs)  # type: ignore[arg-type]

    def to_json(self) -> str:
        """The current convention set, serialized."""
        return conventions_to_json(self.result)

    @property
    def index(self) -> DispatchIndex:
        """The live dispatch index."""
        return self._state[0]

    @property
    def memo(self) -> Optional[AnnotationMemo]:
        """The live annotation memo (``None`` when ``memo_size=0``)."""
        return self._state[1]

    def warm(self) -> int:
        """Pre-compile every plan; returns the number of plans."""
        return self._state[0].warm()

    def reload_result(self, result: HoihoResult) -> int:
        """Swap in a new convention set; returns the new plan count.

        The replacement index is fully built (and warmed) and paired
        with a **fresh memo** before the single-assignment swap, so
        concurrent readers only ever see a complete index together with
        a memo whose entries were computed against that same index --
        the reload invalidates the memo atomically.  The replaced
        memo's counters are retired into the cumulative totals.
        """
        index = DispatchIndex.from_result(result, self.usable_only,
                                          fuse=self.fuse)
        index.warm()
        old_memo = self._state[1]
        if old_memo is not None:
            retired = self._memo_retired
            retired["hits"] += old_memo.hits
            retired["misses"] += old_memo.misses
            retired["evictions"] += old_memo.evictions
        memo = AnnotationMemo(self.memo_size) if self.memo_size else None
        self.result = result
        self._index = index
        self._state = (index, memo)
        self._sync_memo_counters(memo)
        return len(index)

    def reload_json(self, text: str) -> int:
        """Reload from serialized conventions."""
        return self.reload_result(conventions_from_json(text))

    def reload_json_file(self, path: str) -> int:
        """Reload from a conventions JSON file."""
        with open(path, encoding="utf-8") as handle:
            return self.reload_json(handle.read())

    def reload_store(self, store: ArtifactStore, payload: Mapping) -> int:
        """Reload from a cached learning result in ``store``."""
        result = store.get(KIND_HOIHO, payload)
        if result is None:
            raise LookupError(
                "no cached conventions for payload (fingerprint %s)"
                % store.fingerprint(payload))
        return self.reload_result(result)  # type: ignore[arg-type]

    # -- per-request API ---------------------------------------------------

    def annotate_one(self, hostname: object) -> Optional[int]:
        """Annotate one hostname; ``None`` on miss or malformed input."""
        return self.annotate_outcome(hostname)[0]

    def annotate_outcome(self, hostname: object, *,
                         prenormalized: bool = False,
                         ) -> Tuple[Optional[int], Optional[str]]:
        """Annotate one hostname, returning ``(asn, suffix)``.

        The suffix is the convention that supplied the extraction
        (``None`` on miss or malformed input).  This is what
        :class:`~repro.serve.shadow.ShadowService` compares across
        convention sets; metrics accounting is identical to
        :meth:`annotate_one`.

        ``prenormalized=True`` asserts the input is already a
        :func:`normalize_hostname` output (a lowercase key, or ``None``
        for malformed).  Shadow mode uses it to normalize once and
        annotate against two convention sets; anything else must leave
        it off, because an unnormalized key would poison the memo.
        """
        start = time.perf_counter()
        self._requests.inc()
        index, memo = self._state
        normalized = hostname if prenormalized \
            else normalize_hostname(hostname)
        if normalized is None:
            self._malformed.inc()
            self._misses.inc()
            self._latency.observe(time.perf_counter() - start)
            return _NO_MATCH
        entry = memo.get(normalized) if memo is not None else ABSENT
        if entry is ABSENT:
            plan = index.lookup_normalized(normalized)
            asn = plan.extract(normalized) if plan is not None else None
            suffix = plan.suffix if asn is not None else None
            entry = (asn, suffix)
            if memo is not None:
                memo.put(normalized, entry)
        else:
            asn, suffix = entry
        if asn is None:
            self._misses.inc()
        else:
            self._annotated.inc()
            self._extracted.inc(suffix)
        self._latency.observe(time.perf_counter() - start)
        return entry

    def annotate_batch(self,
                       hostnames: Iterable[object]) -> List[Optional[int]]:
        """Annotate many hostnames, preserving input order.

        A thin projection of :meth:`annotate_batch_entries` down to the
        ASN column -- the shape every existing consumer wants.
        """
        return [entry[0] for entry in self.annotate_batch_entries(hostnames)]

    def annotate_batch_entries(
            self, hostnames: Iterable[object], *,
            prenormalized: bool = False,
    ) -> List[Tuple[Optional[int], Optional[str]]]:
        """Annotate many hostnames into ``(asn, suffix)`` entries.

        This is the single-core throughput path: one tight loop over a
        consistent ``(index, memo)`` snapshot, metrics folded in as
        aggregates at the end.  It reaches into the memo's internals
        (one dict probe per hit, counters banked once per batch)
        because a bound-method call per hostname is measurable at
        millions of requests per second.  On a memo hit the stored
        entry tuple is appended as-is, so the hot path allocates
        nothing per hostname.  The latency histogram records the
        batch's amortised per-item time once per request, keeping
        ``count == requests``.

        ``prenormalized=True`` asserts every item is already a
        :func:`normalize_hostname` output (a lowercase key, or ``None``
        for malformed) so the loop skips re-normalizing.  Shadow mode
        uses it to pay normalization once for two convention sets;
        anything else must leave it off, because an unnormalized key
        would poison the memo.
        """
        start = time.perf_counter()
        index, memo = self._state
        results: List[Tuple[Optional[int], Optional[str]]] = []
        append = results.append
        lookup = index.lookup_normalized
        annotated = misses = malformed = 0
        suffix_counts: dict = {}
        if memo is None:
            for hostname in hostnames:
                normalized = hostname if prenormalized \
                    else normalize_hostname(hostname)
                if normalized is None:
                    malformed += 1
                    misses += 1
                    append(_NO_MATCH)
                    continue
                plan = lookup(normalized)
                asn = plan.extract(normalized) if plan is not None else None
                if asn is None:
                    misses += 1
                    append(_NO_MATCH)
                else:
                    annotated += 1
                    suffix = plan.suffix
                    suffix_counts[suffix] = suffix_counts.get(suffix, 0) + 1
                    append((asn, suffix))
        else:
            data = memo.data
            probe = data.get
            touch = data.move_to_end
            put = memo.put
            hits = probes = 0
            for hostname in hostnames:
                normalized = hostname if prenormalized \
                    else normalize_hostname(hostname)
                if normalized is None:
                    malformed += 1
                    misses += 1
                    append(_NO_MATCH)
                    continue
                probes += 1
                entry = probe(normalized, ABSENT)
                if entry is ABSENT:
                    plan = lookup(normalized)
                    asn = plan.extract(normalized) \
                        if plan is not None else None
                    suffix = plan.suffix if asn is not None else None
                    entry = (asn, suffix)
                    put(normalized, entry)
                else:
                    hits += 1
                    try:
                        touch(normalized)
                    except KeyError:
                        pass  # concurrently evicted
                    asn, suffix = entry
                if asn is None:
                    misses += 1
                else:
                    annotated += 1
                    suffix_counts[suffix] = suffix_counts.get(suffix, 0) + 1
                append(entry)
            memo.hits += hits
            memo.misses += probes - hits
        count = len(results)
        self._requests.inc(count)
        self._annotated.inc(annotated)
        self._misses.inc(misses)
        if malformed:
            self._malformed.inc(malformed)
        extracted = self._extracted
        for suffix, n in suffix_counts.items():
            extracted.inc(suffix, n)
        if count:
            self._latency.observe_many(
                (time.perf_counter() - start) / count, count)
        return results

    def annotate_pairs(self, hostnames: Iterable[str],
                       ) -> Iterator[Tuple[str, Optional[int]]]:
        """Lazily yield ``(hostname, annotation)`` in input order."""
        for hostname in hostnames:
            yield hostname, self.annotate_one(hostname)

    # -- observability -----------------------------------------------------

    def _sync_memo_counters(self, memo: Optional[AnnotationMemo]) -> None:
        """Catch the registry's memo counters up to ``memo``'s tallies.

        The hot path banks hits/misses on the memo object itself (plain
        int adds) rather than going through ``Counter.inc`` per probe;
        this folds cumulative totals -- retired memos plus the live one
        -- into the registry before anyone reads a snapshot.  The memo
        is passed in (not re-read from ``self._state``) so callers that
        also read the state tuple describe one consistent state.
        """
        retired = self._memo_retired
        totals = dict(retired)
        if memo is not None:
            totals["hits"] += memo.hits
            totals["misses"] += memo.misses
            totals["evictions"] += memo.evictions
        for counter, key in ((self._memo_hits, "hits"),
                             (self._memo_misses, "misses"),
                             (self._memo_evictions, "evictions")):
            delta = totals[key] - counter.value
            if delta > 0:
                counter.inc(delta)

    def stats(self) -> dict:
        """JSON-ready metrics snapshot (see ``MetricsRegistry``).

        The ``(index, memo)`` tuple is read exactly once and threaded
        through: reading it again after ``snapshot()`` would let a
        concurrent reload pair one state's counters with another
        state's memo/fused-plan fields.
        """
        index, memo = self._state
        self._sync_memo_counters(memo)
        snapshot = self.metrics.snapshot()
        snapshot["suffixes_indexed"] = len(index)
        snapshot["fused_plans"] = index.fused_plans()
        snapshot["memo"] = memo.stats() if memo is not None else None
        return snapshot

    def __repr__(self) -> str:
        return "AnnotationService(%d suffixes, %d requests)" % (
            len(self._index), self._requests.value)
