"""Suffix-trie dispatch from hostnames to pre-compiled extraction plans.

The learner's own :meth:`HoihoResult.extract` resolves every hostname
through the public-suffix list -- a linear scan over all PSL rules --
and then walks the convention's :class:`Regex` objects, lowercasing the
hostname once per regex.  Fine for a report, hopeless for bulk serving.

This module front-loads all of that:

* each :class:`LearnedConvention` becomes an :class:`AnnotationPlan`:
  its patterns compiled once, in evaluation order, first match wins;
* all plans hang off a **reversed-label trie**
  (:class:`DispatchIndex`), so mapping a hostname to its owning plan is
  O(labels) dict hops instead of a PSL rule scan.

Dispatch semantics: the *longest* convention suffix that suffix-matches
the hostname wins.  For learner-produced results this is provably the
same answer the PSL path gives: every convention key is a registered
domain under one fixed PSL, registered domains form an antichain under
the suffix relation (if ``b.example.com`` were registerable,
``example.com`` would be a public suffix and hence not registerable),
so at most one key can suffix-match any hostname -- exactly the
hostname's registered domain.  PSL wildcard and exception rules are
therefore honoured for free: a convention learned for ``www.ck``
(registerable only because of the ``!www.ck`` exception to ``*.ck``)
occupies the ``ck -> www`` trie path, and hostnames under other
``*.ck`` domains walk past it without matching.

Hostnames are normalised (lower-cased, surrounding dots stripped)
before dispatch, so trailing-dot FQDNs and uppercase labels annotate
identically to their canonical forms.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Pattern, Tuple

from repro.core.hoiho import HoihoResult
from repro.core.select import LearnedConvention, NCClass

#: Trie-node key holding the node's plan (labels are plain strings, so
#: any non-string sentinel cannot collide).
_PLAN_KEY = object()


def normalize_hostname(hostname: object) -> Optional[str]:
    """Canonical lookup form of ``hostname``, or ``None`` if malformed.

    Lower-cases, trims whitespace, and strips surrounding dots (so
    trailing-dot FQDNs resolve like their canonical form).  Anything
    that is not a non-empty string -- or is empty once stripped --
    is malformed.
    """
    if not isinstance(hostname, str):
        return None
    hostname = hostname.strip().strip(".").lower()
    return hostname or None


class AnnotationPlan:
    """One suffix's conventions, compiled into a first-match program.

    The pattern order mirrors :meth:`LearnedConvention.extract`: the
    first matching regex supplies the extraction.  Compilation is lazy
    (:attr:`compiled`) so building an index over thousands of suffixes
    stays cheap; :meth:`warm` forces it.
    """

    __slots__ = ("suffix", "patterns", "nc_class", "_compiled")

    def __init__(self, suffix: str, patterns: Iterable[str],
                 nc_class: NCClass = NCClass.GOOD) -> None:
        self.suffix = suffix
        self.patterns: Tuple[str, ...] = tuple(patterns)
        self.nc_class = nc_class
        self._compiled: Optional[Tuple[Pattern[str], ...]] = None

    @classmethod
    def from_convention(cls, convention: LearnedConvention,
                        ) -> "AnnotationPlan":
        """The plan equivalent of a learned convention."""
        return cls(convention.suffix, convention.patterns(),
                   convention.nc_class)

    @property
    def usable(self) -> bool:
        """Usable = good or promising (section 4)."""
        return self.nc_class.usable

    @property
    def compiled(self) -> Tuple[Pattern[str], ...]:
        """The compiled patterns, compiling on first access."""
        if self._compiled is None:
            self._compiled = tuple(re.compile(p) for p in self.patterns)
        return self._compiled

    def warm(self) -> None:
        """Force pattern compilation now."""
        self.compiled

    def extract(self, hostname: str) -> Optional[int]:
        """Extract an ASN from an already-normalised hostname."""
        for pattern in self.compiled:
            match = pattern.match(hostname)
            if match is not None:
                return int(match.group(1))
        return None

    def __repr__(self) -> str:
        return "AnnotationPlan(%s, %d pattern%s)" % (
            self.suffix, len(self.patterns),
            "" if len(self.patterns) == 1 else "s")


class DispatchIndex:
    """Reversed-label suffix trie over :class:`AnnotationPlan` objects.

    >>> from repro.core.evaluate import NCScore
    >>> from repro.core.regex_model import Regex
    >>> conv = LearnedConvention(
    ...     "example.com", (Regex.raw(r"^as(\\d+)\\.\\w+\\.example\\.com$"),),
    ...     NCScore(tp=4), NCClass.GOOD)
    >>> index = DispatchIndex([AnnotationPlan.from_convention(conv)])
    >>> index.lookup("as3356.lon.example.com").suffix
    'example.com'
    >>> index.annotate("AS3356.lon.Example.COM.")
    3356
    >>> index.lookup("as3356.lon.example.net") is None
    True
    """

    def __init__(self, plans: Iterable[AnnotationPlan] = ()) -> None:
        self._root: Dict[object, object] = {}
        self._plans: Dict[str, AnnotationPlan] = {}
        for plan in plans:
            self.add(plan)

    @classmethod
    def from_result(cls, result: HoihoResult,
                    usable_only: bool = False) -> "DispatchIndex":
        """Index every convention of ``result`` (optionally only the
        usable ones)."""
        return cls(AnnotationPlan.from_convention(convention)
                   for convention in result.conventions.values()
                   if not usable_only or convention.usable)

    def add(self, plan: AnnotationPlan) -> None:
        """Insert ``plan``, replacing any existing plan for its suffix."""
        suffix = normalize_hostname(plan.suffix)
        if suffix is None:
            raise ValueError("unindexable suffix %r" % (plan.suffix,))
        node = self._root
        for label in reversed(suffix.split(".")):
            node = node.setdefault(label, {})  # type: ignore[assignment]
        node[_PLAN_KEY] = plan
        self._plans[suffix] = plan

    def __len__(self) -> int:
        return len(self._plans)

    def suffixes(self) -> List[str]:
        """Indexed suffixes, sorted."""
        return sorted(self._plans)

    def plan_for(self, suffix: str) -> Optional[AnnotationPlan]:
        """The plan stored for exactly ``suffix``, if any."""
        normalized = normalize_hostname(suffix)
        return self._plans.get(normalized) if normalized else None

    def warm(self) -> int:
        """Compile every plan's patterns; returns the plan count."""
        for plan in self._plans.values():
            plan.warm()
        return len(self._plans)

    def lookup(self, hostname: str) -> Optional[AnnotationPlan]:
        """The owning plan of ``hostname`` (normalising first), or None."""
        normalized = normalize_hostname(hostname)
        if normalized is None:
            return None
        return self.lookup_normalized(normalized)

    def lookup_normalized(self, hostname: str) -> Optional[AnnotationPlan]:
        """Deepest plan whose suffix matches an already-normalised
        hostname: O(labels) dict hops."""
        node = self._root
        best: Optional[AnnotationPlan] = None
        for label in reversed(hostname.split(".")):
            next_node = node.get(label)
            if next_node is None:
                break
            node = next_node  # type: ignore[assignment]
            plan = node.get(_PLAN_KEY)
            if plan is not None:
                best = plan  # type: ignore[assignment]
        return best

    def annotate(self, hostname: str) -> Optional[int]:
        """Metrics-free fast path: normalise, dispatch, extract."""
        normalized = normalize_hostname(hostname)
        if normalized is None:
            return None
        plan = self.lookup_normalized(normalized)
        if plan is None:
            return None
        return plan.extract(normalized)

    def __repr__(self) -> str:
        return "DispatchIndex(%d suffixes)" % len(self._plans)
