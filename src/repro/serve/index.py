"""Suffix-trie dispatch from hostnames to pre-compiled extraction plans.

The learner's own :meth:`HoihoResult.extract` resolves every hostname
through the public-suffix list -- a linear scan over all PSL rules --
and then walks the convention's :class:`Regex` objects, lowercasing the
hostname once per regex.  Fine for a report, hopeless for bulk serving.

This module front-loads all of that:

* each :class:`LearnedConvention` becomes an :class:`AnnotationPlan`:
  its patterns compiled once, in evaluation order, first match wins;
* all plans hang off a **reversed-label trie**
  (:class:`DispatchIndex`), so mapping a hostname to its owning plan is
  O(labels) dict hops instead of a PSL rule scan.

Dispatch semantics: the *longest* convention suffix that suffix-matches
the hostname wins.  For learner-produced results this is provably the
same answer the PSL path gives: every convention key is a registered
domain under one fixed PSL, registered domains form an antichain under
the suffix relation (if ``b.example.com`` were registerable,
``example.com`` would be a public suffix and hence not registerable),
so at most one key can suffix-match any hostname -- exactly the
hostname's registered domain.  PSL wildcard and exception rules are
therefore honoured for free: a convention learned for ``www.ck``
(registerable only because of the ``!www.ck`` exception to ``*.ck``)
occupies the ``ck -> www`` trie path, and hostnames under other
``*.ck`` domains walk past it without matching.

Hostnames are normalised (lower-cased, surrounding dots stripped)
before dispatch, so trailing-dot FQDNs and uppercase labels annotate
identically to their canonical forms.

**Fused matchers** (the dispatch hot path): a plan's ordered pattern
list is additionally compiled -- when safe -- into a *single*
alternation regex, ``(p1)|(p2)|...``, so one ``re.match`` call replaces
the sequential first-match loop.  Python's regex alternation is
leftmost-first at a fixed position, and ``re.match`` anchors every
alternative at position 0, so the fused program tries exactly the same
candidates in exactly the same order as the loop -- first match wins
either way.  Each alternative is wrapped in its own capture group;
after a match, the branch that fired is recovered from
``Match.lastindex`` (only one branch's groups can participate) and the
branch's original group 1 -- the ASN capture -- is read at its shifted
offset.  Fusion falls back to the proven sequential loop whenever
equivalence cannot be guaranteed syntactically: numbered or named
backreferences and conditionals (group renumbering would re-target
them), global inline flags like ``(?i)`` (they would leak across
alternatives), patterns without a capture group, duplicate group
names, or a fused program that would exceed
:data:`MAX_FUSED_GROUPS`.  ``AnnotationPlan.extract`` is
result-identical either way (property-tested in
``tests/props/test_hotpath_props.py``).
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Pattern, Tuple

from repro.core.hoiho import HoihoResult
from repro.core.select import LearnedConvention, NCClass

#: Trie-node key holding the node's plan (labels are plain strings, so
#: any non-string sentinel cannot collide).
_PLAN_KEY = object()

#: Most capture groups a fused program may use.  Stays under the
#: classic ``re`` backreference limit (100) with margin; plans whose
#: alternation would exceed it keep the sequential loop.
MAX_FUSED_GROUPS = 96

#: Global inline flags -- ``(?i)``, ``(?im)``, ... -- apply to the
#: whole expression, so fusing them into an alternation would leak one
#: pattern's flags onto its siblings.  Scoped groups like ``(?i:...)``
#: are local and stay fusable.  The scan is conservative (a literal
#: ``(?i)`` inside a character class also triggers fallback).
_GLOBAL_FLAGS = re.compile(r"\(\?[aiLmsux]+\)")

#: Backreferences and conditionals name groups by number or name;
#: fusion renumbers groups, so any of these forces the sequential
#: fallback.  ``\\[1-9]`` is conservative: an escaped backslash before
#: a digit (``\\1`` matching literal ``\1``) also triggers fallback.
_BACKREF = re.compile(r"\\[1-9]|\(\?P=|\(\?\(")


class _SequentialMatcher:
    """The proven first-match loop over individually compiled patterns."""

    __slots__ = ("patterns",)

    fused = False

    def __init__(self, patterns: Tuple[Pattern[str], ...]) -> None:
        self.patterns = patterns

    def extract(self, hostname: str) -> Optional[int]:
        for pattern in self.patterns:
            match = pattern.match(hostname)
            if match is not None:
                return int(match.group(1))
        return None


class _FusedMatcher:
    """One alternation regex replacing the sequential first-match loop.

    ``bases[i]`` is the capture group wrapping alternative ``i``; the
    alternative's ASN group (its original group 1) sits at
    ``bases[i] + 1``.  Exactly one branch participates in any match, so
    ``Match.lastindex`` -- the highest-numbered group that matched --
    always falls inside the winning branch's group range, and a bisect
    over ``bases`` recovers the branch without re-testing groups.
    """

    __slots__ = ("regex", "bases")

    fused = True

    def __init__(self, regex: Pattern[str], bases: Tuple[int, ...]) -> None:
        self.regex = regex
        self.bases = bases

    def extract(self, hostname: str) -> Optional[int]:
        match = self.regex.match(hostname)
        if match is None:
            return None
        bases = self.bases
        base = bases[bisect_right(bases, match.lastindex) - 1]
        return int(match.group(base + 1))


def fuse_patterns(patterns: Tuple[str, ...],
                  compiled: Tuple[Pattern[str], ...],
                  ) -> Optional[_FusedMatcher]:
    """The fused program for ``patterns``, or ``None`` when fusion
    cannot be proven equivalent to the sequential loop (see the module
    docstring for the exact fallback conditions)."""
    if len(patterns) < 2:
        return None
    for pattern, regex in zip(patterns, compiled):
        if regex.groups == 0:
            # No ASN capture: the sequential loop would raise on a
            # match; keep that (surfaced) behaviour rather than guess.
            return None
        if _GLOBAL_FLAGS.search(pattern) or _BACKREF.search(pattern):
            return None
    total = sum(regex.groups for regex in compiled) + len(compiled)
    if total > MAX_FUSED_GROUPS:
        return None
    bases: List[int] = []
    parts: List[str] = []
    offset = 0
    for pattern, regex in zip(patterns, compiled):
        bases.append(offset + 1)
        parts.append("(%s)" % pattern)
        offset += regex.groups + 1
    try:
        fused = re.compile("|".join(parts))
    except re.error:
        # Duplicate named groups across alternatives, engine limits --
        # anything the syntactic screen missed lands here.
        return None
    if fused.groups != total:
        return None
    return _FusedMatcher(fused, tuple(bases))


def normalize_hostname(hostname: object) -> Optional[str]:
    """Canonical lookup form of ``hostname``, or ``None`` if malformed.

    Lower-cases, trims whitespace, and strips surrounding dots (so
    trailing-dot FQDNs resolve like their canonical form).  Whitespace
    and dots are stripped to a fixpoint -- ``"foo.com ."`` must not
    keep its inner space just because the dot was outside it -- so the
    memo key for any decorated form matches its canonical one.
    Anything that is not a non-empty string -- or is empty once
    stripped -- is malformed.
    """
    if not isinstance(hostname, str):
        return None
    hostname = hostname.lower()
    while True:
        stripped = hostname.strip().strip(".")
        if stripped == hostname:
            return hostname or None
        hostname = stripped


class AnnotationPlan:
    """One suffix's conventions, compiled into a first-match program.

    The pattern order mirrors :meth:`LearnedConvention.extract`: the
    first matching regex supplies the extraction.  Compilation is lazy
    (:attr:`compiled` / :attr:`matcher`) so building an index over
    thousands of suffixes stays cheap; :meth:`warm` forces it.

    Lazy compilation is **thread-safe by idempotence**: the compiled
    artifacts are built completely in a local, then published with a
    single attribute assignment (atomic under the GIL).  Two threads
    racing first access may both compile, but each publishes a complete,
    equivalent program and every reader sees either ``None`` or a fully
    built one -- never a partial.  Servers should still call
    :meth:`warm` (or :meth:`DispatchIndex.warm`) before accepting
    traffic so no request pays the compile.
    """

    __slots__ = ("suffix", "patterns", "nc_class", "fuse", "_compiled",
                 "_matcher")

    def __init__(self, suffix: str, patterns: Iterable[str],
                 nc_class: NCClass = NCClass.GOOD,
                 fuse: bool = True) -> None:
        self.suffix = suffix
        self.patterns: Tuple[str, ...] = tuple(patterns)
        self.nc_class = nc_class
        self.fuse = fuse
        self._compiled: Optional[Tuple[Pattern[str], ...]] = None
        self._matcher = None

    @classmethod
    def from_convention(cls, convention: LearnedConvention,
                        fuse: bool = True) -> "AnnotationPlan":
        """The plan equivalent of a learned convention."""
        return cls(convention.suffix, convention.patterns(),
                   convention.nc_class, fuse=fuse)

    @property
    def usable(self) -> bool:
        """Usable = good or promising (section 4)."""
        return self.nc_class.usable

    @property
    def compiled(self) -> Tuple[Pattern[str], ...]:
        """The individually compiled patterns, compiling on first
        access (complete-then-publish, so concurrent first calls are
        safe)."""
        compiled = self._compiled
        if compiled is None:
            compiled = tuple(re.compile(p) for p in self.patterns)
            self._compiled = compiled
        return compiled

    @property
    def matcher(self):
        """The extraction program: fused when provably equivalent,
        else the sequential loop (see the module docstring)."""
        matcher = self._matcher
        if matcher is None:
            compiled = self.compiled
            matcher = (fuse_patterns(self.patterns, compiled)
                       if self.fuse else None) \
                or _SequentialMatcher(compiled)
            self._matcher = matcher
        return matcher

    @property
    def fused(self) -> bool:
        """Whether extraction runs the fused program (compiles it)."""
        return self.matcher.fused

    def warm(self) -> None:
        """Force pattern + matcher compilation now."""
        self.matcher

    def extract(self, hostname: str) -> Optional[int]:
        """Extract an ASN from an already-normalised hostname."""
        matcher = self._matcher
        if matcher is None:
            matcher = self.matcher
        return matcher.extract(hostname)

    def __repr__(self) -> str:
        return "AnnotationPlan(%s, %d pattern%s)" % (
            self.suffix, len(self.patterns),
            "" if len(self.patterns) == 1 else "s")


class DispatchIndex:
    """Reversed-label suffix trie over :class:`AnnotationPlan` objects.

    >>> from repro.core.evaluate import NCScore
    >>> from repro.core.regex_model import Regex
    >>> conv = LearnedConvention(
    ...     "example.com", (Regex.raw(r"^as(\\d+)\\.\\w+\\.example\\.com$"),),
    ...     NCScore(tp=4), NCClass.GOOD)
    >>> index = DispatchIndex([AnnotationPlan.from_convention(conv)])
    >>> index.lookup("as3356.lon.example.com").suffix
    'example.com'
    >>> index.annotate("AS3356.lon.Example.COM.")
    3356
    >>> index.lookup("as3356.lon.example.net") is None
    True
    """

    def __init__(self, plans: Iterable[AnnotationPlan] = ()) -> None:
        self._root: Dict[object, object] = {}
        self._plans: Dict[str, AnnotationPlan] = {}
        for plan in plans:
            self.add(plan)

    @classmethod
    def from_result(cls, result: HoihoResult,
                    usable_only: bool = False,
                    fuse: bool = True) -> "DispatchIndex":
        """Index every convention of ``result`` (optionally only the
        usable ones).  ``fuse=False`` pins every plan to the sequential
        matcher -- the reference path the fused program is property-
        tested against."""
        return cls(AnnotationPlan.from_convention(convention, fuse=fuse)
                   for convention in result.conventions.values()
                   if not usable_only or convention.usable)

    def add(self, plan: AnnotationPlan) -> None:
        """Insert ``plan``, replacing any existing plan for its suffix."""
        suffix = normalize_hostname(plan.suffix)
        if suffix is None:
            raise ValueError("unindexable suffix %r" % (plan.suffix,))
        node = self._root
        for label in reversed(suffix.split(".")):
            node = node.setdefault(label, {})  # type: ignore[assignment]
        node[_PLAN_KEY] = plan
        self._plans[suffix] = plan

    def __len__(self) -> int:
        return len(self._plans)

    def suffixes(self) -> List[str]:
        """Indexed suffixes, sorted."""
        return sorted(self._plans)

    def plan_for(self, suffix: str) -> Optional[AnnotationPlan]:
        """The plan stored for exactly ``suffix``, if any."""
        normalized = normalize_hostname(suffix)
        return self._plans.get(normalized) if normalized else None

    def warm(self) -> int:
        """Compile every plan's patterns; returns the plan count."""
        for plan in self._plans.values():
            plan.warm()
        return len(self._plans)

    def fused_plans(self) -> int:
        """How many plans run the fused program (compiles them)."""
        return sum(1 for plan in self._plans.values() if plan.fused)

    def lookup(self, hostname: str) -> Optional[AnnotationPlan]:
        """The owning plan of ``hostname`` (normalising first), or None."""
        normalized = normalize_hostname(hostname)
        if normalized is None:
            return None
        return self.lookup_normalized(normalized)

    def lookup_normalized(self, hostname: str) -> Optional[AnnotationPlan]:
        """Deepest plan whose suffix matches an already-normalised
        hostname: O(labels) dict hops."""
        node = self._root
        best: Optional[AnnotationPlan] = None
        for label in reversed(hostname.split(".")):
            next_node = node.get(label)
            if next_node is None:
                break
            node = next_node  # type: ignore[assignment]
            plan = node.get(_PLAN_KEY)
            if plan is not None:
                best = plan  # type: ignore[assignment]
        return best

    def annotate(self, hostname: str) -> Optional[int]:
        """Metrics-free fast path: normalise, dispatch, extract."""
        normalized = normalize_hostname(hostname)
        if normalized is None:
            return None
        plan = self.lookup_normalized(normalized)
        if plan is None:
            return None
        return plan.extract(normalized)

    def __repr__(self) -> str:
        return "DispatchIndex(%d suffixes)" % len(self._plans)
