"""Compatibility re-export: the metrics primitives live in
:mod:`repro.obs.metrics` now.

The serving layer grew these first (PR 3); once the learner, snapshot
pipeline, and artifact store wanted the same counters and histograms,
the primitives were promoted into ``repro.obs`` as the single registry
vocabulary for the whole repo.  Import from ``repro.obs.metrics`` in
new code; this module keeps every existing ``repro.serve.metrics``
import site working unchanged.
"""

from repro.obs.metrics import (  # noqa: F401
    Counter,
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_PERCENTILES,
    Histogram,
    LabelledCounter,
    MetricsRegistry,
    merge_outcomes,
    render_snapshot,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_PERCENTILES",
    "Histogram",
    "LabelledCounter",
    "MetricsRegistry",
    "merge_outcomes",
    "render_snapshot",
]
