"""Zipf-aware memoization for the annotation hot path.

Production PTR streams are heavily skewed: a small set of router
interfaces dominates any snapshot's hostname traffic (rank-frequency is
roughly Zipfian), so the same hostnames are annotated over and over.
:class:`AnnotationMemo` is a bounded LRU cache keyed on the *normalized*
hostname, sitting in front of the trie lookup + regex extraction: a hit
collapses the whole dispatch pipeline into one dict probe.

The memo stores the complete annotation outcome -- ``(asn, suffix)``,
with ``asn`` ``None`` for misses (negative lookups are cached too:
unknown suffixes repeat just as hard) and ``suffix`` the owning plan's
suffix when an ASN was extracted (so per-suffix metrics stay exact on
hits).  Malformed inputs never reach the memo (they have no normalized
key).

Concurrency: all state lives in one :class:`~collections.OrderedDict`
whose individual operations are atomic under the GIL.  Reads and writes
from multiple threads cannot corrupt the structure; the recency touch
(``move_to_end``) is best-effort under a race (a key concurrently
evicted is simply not touched).  The service layer swaps the *whole
memo object* atomically on hot reload -- see
``AnnotationService.reload_result`` -- so a reload can never serve a
stale entry against a new convention set.

The hit counters are plain Python ints updated without a lock; under
free-threaded interpreters they are statistics, not ledgers.  The
cached values themselves are always exact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: Default memo capacity.  At ~100 bytes per entry this is a few MB --
#: small against a serving process, large against the head of a Zipf
#: distribution (the top 64Ki hostnames of an ITDK PTR snapshot cover
#: the overwhelming majority of requests).
DEFAULT_MEMO_SIZE = 65536

#: Sentinel distinguishing "not memoized" from a memoized miss
#: (``(None, None)`` is a legitimate cached outcome).
ABSENT = object()

#: A memo entry: ``(asn, owning suffix)``; both ``None`` on a miss.
Entry = Tuple[Optional[int], Optional[str]]


class AnnotationMemo:
    """Bounded LRU memo over complete annotation outcomes.

    >>> memo = AnnotationMemo(capacity=2)
    >>> memo.get("a.example.com") is ABSENT
    True
    >>> memo.put("a.example.com", (42, "example.com"))
    >>> memo.get("a.example.com")
    (42, 'example.com')
    >>> memo.put("b.example.com", (None, None))   # misses cache too
    >>> memo.put("c.example.com", (7, "example.com"))
    >>> len(memo)                                 # "a" was just used,
    2
    >>> memo.get("b.example.com") is ABSENT       # ... so "b" evicted
    True
    >>> memo.stats()["evictions"]
    1
    """

    __slots__ = ("capacity", "data", "hits", "misses", "evictions")

    def __init__(self, capacity: int = DEFAULT_MEMO_SIZE) -> None:
        if capacity < 1:
            raise ValueError("memo capacity must be >= 1, got %d"
                             % capacity)
        self.capacity = capacity
        self.data: "OrderedDict[str, Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str):
        """The entry for ``key``, or :data:`ABSENT`; counts the probe
        and touches recency on a hit."""
        data = self.data
        entry = data.get(key, ABSENT)
        if entry is ABSENT:
            self.misses += 1
            return ABSENT
        self.hits += 1
        try:
            data.move_to_end(key)
        except KeyError:
            pass  # concurrently evicted; recency touch is best-effort
        return entry

    def put(self, key: str, value: Entry) -> None:
        """Insert ``value`` under ``key`` (refreshing its recency --
        plain assignment keeps an existing key's position), evicting
        the least recently used entry when over capacity."""
        data = self.data
        data[key] = value
        try:
            data.move_to_end(key)
        except KeyError:
            pass  # concurrently cleared; recency touch is best-effort
        if len(data) > self.capacity:
            try:
                data.popitem(last=False)
                self.evictions += 1
            except KeyError:
                pass  # concurrent clear/eviction emptied the dict

    def clear(self) -> None:
        """Drop every entry (counters keep their cumulative values)."""
        self.data.clear()

    def __len__(self) -> int:
        return len(self.data)

    def stats(self) -> Dict[str, object]:
        """JSON-ready snapshot of the memo's work."""
        hits, misses = self.hits, self.misses
        probes = hits + misses
        return {
            "size": len(self.data),
            "capacity": self.capacity,
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions,
            "hit_rate": hits / probes if probes else 0.0,
        }

    def __repr__(self) -> str:
        return "AnnotationMemo(%d/%d, %d hits, %d misses)" % (
            len(self.data), self.capacity, self.hits, self.misses)
