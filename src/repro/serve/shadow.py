"""``repro.serve.shadow`` -- side-by-side convention sets, measured.

The paper's conventions go stale as operators rename interfaces
(Section 6); the production answer is to *shadow* a freshly learned
candidate set behind the live one before trusting it.
:class:`ShadowService` wraps a primary
:class:`~repro.serve.service.AnnotationService` plus a candidate
convention set loaded side-by-side: every request is annotated against
**both**, callers only ever see the primary's answer, and the
per-suffix agreement between the two accumulates in a
:class:`ShadowLedger` until the operator reads the disagreement report
and decides to promote (or discard) the candidate.

Design points:

* **API-compatible** -- the service exposes the full
  ``AnnotationService`` surface (``annotate_one`` / ``annotate_batch``
  / ``annotate_pairs`` / ``warm`` / ``reload_*`` / ``stats`` /
  ``index`` / ``memo`` / ``to_json``), so
  :class:`~repro.serve.engine.BulkAnnotator` and the HTTP server
  compose with it unchanged.  (The bulk engine's *process fan-out*
  serializes only the primary conventions to its workers; shadow
  comparison is a serving-process feature.)
* **Ledger lives in the registry** -- agreement counts are labelled
  counters (``shadow_agree`` / ``shadow_primary_only`` /
  ``shadow_candidate_only`` / ``shadow_conflict``, one label per
  suffix) plus ``shadow_requests``/``shadow_disagreements`` totals in
  the *primary's* :class:`~repro.obs.metrics.MetricsRegistry`.  They
  ride every ``stats()`` snapshot, so the pre-fork HTTP server's
  per-worker flushes merge fleet-wide through the existing
  ``MetricsRegistry.merge_snapshot`` -- no new aggregation machinery.
  Capped example hostnames per divergence class travel in the
  snapshot's ``shadow`` extra and are merged by
  :func:`merge_shadow_reports`.
* **Atomic state** -- the candidate service is published by a single
  attribute assignment (GIL-atomic), read once per request; ``promote``
  swaps the candidate's conventions into the primary through the
  existing atomic ``reload_result`` machinery and clears the ledger.
  Each side keeps its own memo, so the dual-annotation cost on a
  memo-warm Zipf stream stays near 2x a single set (the bench ``shadow``
  section holds it under 2.2x).

Divergence classes per request (the suffix label is the side that
annotated; ``(none)`` when both missed):

=================  ====================================================
``agree``          both sides returned the same ASN (or both missed)
``primary_only``   primary annotated, candidate missed
``candidate_only`` candidate annotated, primary missed
``conflict``       both annotated, different ASNs
=================  ====================================================
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, \
    Sequence, Tuple

from repro.core.hoiho import HoihoResult
from repro.core.io import conventions_from_json
from repro.obs.metrics import MetricsRegistry
from repro.serve.index import DispatchIndex
from repro.serve.memo import AnnotationMemo
from repro.serve.service import AnnotationService, normalize_hostname

#: Example hostnames retained per divergence class (first-seen wins;
#: enough to eyeball what kind of names disagree, small enough to ride
#: every metrics snapshot).
EXAMPLE_CAP = 5

#: Per-suffix label for requests neither side annotated.
MISS_LABEL = "(none)"

CLASS_AGREE = "agree"
CLASS_PRIMARY_ONLY = "primary_only"
CLASS_CANDIDATE_ONLY = "candidate_only"
CLASS_CONFLICT = "conflict"

#: The three classes that count as disagreement (and keep examples).
DIVERGENCE_CLASSES = (CLASS_PRIMARY_ONLY, CLASS_CANDIDATE_ONLY,
                      CLASS_CONFLICT)
ALL_CLASSES = (CLASS_AGREE,) + DIVERGENCE_CLASSES

#: Divergence class -> labelled-counter name in the registry.
SHADOW_COUNTER_NAMES = {
    CLASS_AGREE: "shadow_agree",
    CLASS_PRIMARY_ONLY: "shadow_primary_only",
    CLASS_CANDIDATE_ONLY: "shadow_candidate_only",
    CLASS_CONFLICT: "shadow_conflict",
}

Entry = Tuple[Optional[int], Optional[str]]


class ShadowLedger:
    """Per-suffix agreement bookkeeping between two convention sets.

    Counts live as instruments of the supplied registry (see module
    docstring) so they snapshot, flush, and merge exactly like every
    other metric; the capped example lists are the only ledger-private
    state.  All mutation happens under one lock, so a reader never
    sees ``shadow_requests`` out of step with the class totals, and
    :meth:`clear` (candidate load / promote / primary reload) is a
    single epoch boundary.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self._families = {cls: metrics.labelled(name)
                          for cls, name in SHADOW_COUNTER_NAMES.items()}
        self._requests = metrics.counter("shadow_requests")
        self._disagreements = metrics.counter("shadow_disagreements")
        self._lock = threading.Lock()
        self._examples: Dict[str, List[str]] = {
            cls: [] for cls in DIVERGENCE_CLASSES}

    def observe_entries(self, hostnames: Sequence[object],
                        primary: Sequence[Entry],
                        candidate: Sequence[Entry]) -> None:
        """Fold one batch of paired ``(asn, suffix)`` outcomes in.

        Classification runs lock-free over local dicts; the registry
        instruments and example lists are updated once per batch under
        the ledger lock (the hot path must not serialize per hostname).
        """
        agree_counts: Dict[str, int] = {}
        div_counts: Dict[str, Dict[str, int]] = {
            cls: {} for cls in DIVERGENCE_CLASSES}
        fresh: Dict[str, List[str]] = {
            cls: [] for cls in DIVERGENCE_CLASSES}
        agree_get = agree_counts.get
        for index, entry in enumerate(primary):
            shadow_entry = candidate[index]
            if entry == shadow_entry:
                # Fast path: byte-equal outcomes.  Misses are always
                # ``(None, None)``, so this covers agree-with-miss too,
                # and on a memo-warm agreeing stream it is the only
                # branch taken -- keep it to one compare + one count.
                label = entry[1]
                if label is None:
                    label = MISS_LABEL
                agree_counts[label] = agree_get(label, 0) + 1
                continue
            asn, suffix = entry
            shadow_asn, shadow_suffix = shadow_entry
            if asn == shadow_asn:
                # Same ASN from different conventions: still agreement.
                agree_counts[suffix] = agree_get(suffix, 0) + 1
                continue
            if asn is None:
                cls, label = CLASS_CANDIDATE_ONLY, shadow_suffix
            elif shadow_asn is None:
                cls, label = CLASS_PRIMARY_ONLY, suffix
            else:
                cls, label = CLASS_CONFLICT, suffix
            bucket = div_counts[cls]
            bucket[label] = bucket.get(label, 0) + 1
            examples = fresh[cls]
            if len(examples) < EXAMPLE_CAP:
                hostname = hostnames[index]
                examples.append(hostname if isinstance(hostname, str)
                                else repr(hostname))
        with self._lock:
            family = self._families[CLASS_AGREE]
            for label, count in agree_counts.items():
                family.inc(label, count)
            disagreements = 0
            for cls in DIVERGENCE_CLASSES:
                family = self._families[cls]
                for label, count in div_counts[cls].items():
                    family.inc(label, count)
                    disagreements += count
                stored = self._examples[cls]
                for hostname in fresh[cls]:
                    if len(stored) >= EXAMPLE_CAP:
                        break
                    stored.append(hostname)
            self._requests.inc(len(primary))
            if disagreements:
                self._disagreements.inc(disagreements)

    def observe_one(self, hostname: object, primary: Entry,
                    candidate: Entry) -> None:
        """Fold a single paired outcome in."""
        self.observe_entries((hostname,), (primary,), (candidate,))

    def clear(self) -> None:
        """Start a fresh comparison epoch (counts and examples to 0)."""
        with self._lock:
            for family in self._families.values():
                family.values.clear()
            self._requests.value = 0
            self._disagreements.value = 0
            for stored in self._examples.values():
                del stored[:]

    def examples(self) -> Dict[str, List[str]]:
        """A copy of the capped example hostnames per divergence class."""
        with self._lock:
            return {cls: list(stored)
                    for cls, stored in self._examples.items()}

    def disagreement_fraction(self) -> float:
        """Disagreeing requests over all shadowed requests (0 if none)."""
        with self._lock:
            requests = self._requests.value
            return (self._disagreements.value / requests
                    if requests else 0.0)


class ShadowService:
    """An ``AnnotationService`` with a candidate set riding shotgun.

    >>> from repro.core.hoiho import Hoiho
    >>> from repro.core.types import TrainingItem
    >>> old = Hoiho().run([TrainingItem("as%d.pop%d.example.com" % (a, i), a)
    ...                    for i, a in enumerate([3356, 1299, 174, 2914])])
    >>> service = ShadowService(AnnotationService(old))
    >>> service.load_candidate(old) > 0     # identical candidate
    True
    >>> service.annotate_one("as8075.pop1.example.com")
    8075
    >>> service.report()["disagreements"]
    0

    Without a candidate loaded the service is a pure delegating
    wrapper -- annotation costs one extra attribute read.
    """

    def __init__(self, primary: AnnotationService,
                 candidate: Optional[HoihoResult] = None) -> None:
        self.primary = primary
        self.metrics = primary.metrics
        self.ledger = ShadowLedger(primary.metrics)
        #: The live candidate service: published by single assignment
        #: (GIL-atomic), read once per request.
        self._candidate: Optional[AnnotationService] = None
        #: Serializes load/promote/clear against each other (readers
        #: never take it).
        self._swap_lock = threading.Lock()
        if candidate is not None:
            self.load_candidate(candidate)

    # -- candidate lifecycle -----------------------------------------------

    @property
    def candidate(self) -> Optional[AnnotationService]:
        """The candidate-side service (``None`` outside shadow runs)."""
        return self._candidate

    def load_candidate(self, result: HoihoResult) -> int:
        """Load (or replace) the candidate set; returns its plan count.

        The candidate gets its own registry (its counters must not
        pollute the primary's -- primary-side metrics stay identical
        to a plain service) and its own memo, built and warmed before
        the swap.  Loading starts a fresh ledger epoch.
        """
        candidate = AnnotationService(result,
                                      metrics=MetricsRegistry(),
                                      usable_only=self.primary.usable_only,
                                      memo_size=self.primary.memo_size,
                                      fuse=self.primary.fuse)
        candidate.warm()
        with self._swap_lock:
            self._candidate = candidate
            self.ledger.clear()
        return len(candidate.index)

    def load_candidate_json(self, text: str) -> int:
        """Load the candidate from serialized conventions."""
        return self.load_candidate(conventions_from_json(text))

    def load_candidate_file(self, path: str) -> int:
        """Load the candidate from a conventions JSON file."""
        with open(path, encoding="utf-8") as handle:
            return self.load_candidate_json(handle.read())

    def promote(self) -> int:
        """Make the candidate the primary; returns the new plan count.

        The swap rides the primary's atomic ``reload_result`` (built
        and warmed before the single-assignment publish; in-flight
        requests keep the old index), the ledger clears, and the
        candidate slot empties -- the service keeps serving, now from
        the promoted set, until the next ``load_candidate``.  Raises
        :class:`LookupError` when no candidate is loaded.
        """
        with self._swap_lock:
            candidate = self._candidate
            if candidate is None:
                raise LookupError(
                    "no shadow candidate loaded; nothing to promote")
            self._candidate = None
            count = self.primary.reload_result(candidate.result)
            self.ledger.clear()
        return count

    # -- AnnotationService-compatible surface ------------------------------

    @property
    def result(self) -> HoihoResult:
        return self.primary.result

    @property
    def index(self) -> DispatchIndex:
        return self.primary.index

    @property
    def memo(self) -> Optional[AnnotationMemo]:
        return self.primary.memo

    @property
    def memo_size(self) -> int:
        return self.primary.memo_size

    @property
    def usable_only(self) -> bool:
        return self.primary.usable_only

    @property
    def fuse(self) -> bool:
        return self.primary.fuse

    def to_json(self) -> str:
        """The *primary* convention set, serialized (what fan-out and
        reload consumers must see -- the candidate never leaks)."""
        return self.primary.to_json()

    def warm(self) -> int:
        """Warm both sides; returns the primary's plan count."""
        candidate = self._candidate
        if candidate is not None:
            candidate.warm()
        return self.primary.warm()

    def reload_result(self, result: HoihoResult) -> int:
        """Swap the *primary* set (candidate untouched, ledger cleared:
        comparisons against the old primary are no longer meaningful)."""
        count = self.primary.reload_result(result)
        self.ledger.clear()
        return count

    def reload_json(self, text: str) -> int:
        return self.reload_result(conventions_from_json(text))

    def reload_json_file(self, path: str) -> int:
        with open(path, encoding="utf-8") as handle:
            return self.reload_json(handle.read())

    def reload_store(self, store: object, payload: Mapping) -> int:
        count = self.primary.reload_store(store, payload)  # type: ignore
        self.ledger.clear()
        return count

    def annotate_outcome(self, hostname: object) -> Entry:
        candidate = self._candidate
        if candidate is None:
            return self.primary.annotate_outcome(hostname)
        # Normalize once, annotate twice: both sides see the same key,
        # and the dual-annotation overhead stays regex work, not
        # repeated string scrubbing.
        key = normalize_hostname(hostname)
        entry = self.primary.annotate_outcome(key, prenormalized=True)
        shadow_entry = candidate.annotate_outcome(key, prenormalized=True)
        self.ledger.observe_one(hostname, entry, shadow_entry)
        return entry

    def annotate_one(self, hostname: object) -> Optional[int]:
        """The primary's annotation -- the candidate's never escapes."""
        return self.annotate_outcome(hostname)[0]

    def annotate_batch_entries(self, hostnames: Iterable[object],
                               ) -> List[Entry]:
        candidate = self._candidate
        if candidate is None:
            return self.primary.annotate_batch_entries(hostnames)
        if not isinstance(hostnames, (list, tuple)):
            hostnames = list(hostnames)  # both sides must see one stream
        # Normalize once for both sides: hostname scrubbing is pure, so
        # paying it per side would only inflate the shadow overhead.
        keys = [normalize_hostname(hostname) for hostname in hostnames]
        entries = self.primary.annotate_batch_entries(
            keys, prenormalized=True)
        shadow_entries = candidate.annotate_batch_entries(
            keys, prenormalized=True)
        self.ledger.observe_entries(hostnames, entries, shadow_entries)
        return entries

    def annotate_batch(self,
                       hostnames: Iterable[object]) -> List[Optional[int]]:
        """Batch annotation; result-identical to the primary alone."""
        return [entry[0]
                for entry in self.annotate_batch_entries(hostnames)]

    def annotate_pairs(self, hostnames: Iterable[str],
                       ) -> Iterator[Tuple[str, Optional[int]]]:
        """Lazily yield ``(hostname, annotation)`` in input order."""
        for hostname in hostnames:
            yield hostname, self.annotate_one(hostname)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """The primary's snapshot plus a ``shadow`` extra.

        The shadow counters are already inside the snapshot's
        instrument maps (they live in the primary registry); the extra
        carries what instruments cannot: whether a candidate is loaded,
        its size, and the example hostnames per divergence class.
        ``MetricsRegistry.merge_snapshot`` ignores the extra;
        :func:`merge_shadow_reports` folds it across workers.
        """
        snapshot = self.primary.stats()
        candidate = self._candidate
        snapshot["shadow"] = {
            "active": candidate is not None,
            "candidate_suffixes": (len(candidate.index)
                                   if candidate is not None else None),
            "examples": self.ledger.examples(),
        }
        return snapshot

    def disagreement_fraction(self) -> float:
        """Current epoch's disagreeing-request fraction."""
        return self.ledger.disagreement_fraction()

    def report(self) -> dict:
        """This process's disagreement report (see module functions)."""
        return shadow_report_from_snapshot(self.stats())

    def __repr__(self) -> str:
        candidate = self._candidate
        return "ShadowService(%d primary suffixes, candidate=%s)" % (
            len(self.primary.index),
            len(candidate.index) if candidate is not None else "none")


# -- reports ----------------------------------------------------------------


def shadow_report_from_snapshot(snapshot: Mapping) -> dict:
    """Build the JSON disagreement report from one ``stats()`` snapshot.

    Works on any snapshot carrying the ``shadow_*`` instruments -- a
    live service's, a flushed worker file's, or a merged one -- so the
    single-process and pre-fork report paths share this code.
    """
    counters = snapshot.get("counters") or {}
    labelled = snapshot.get("labelled") or {}
    meta = snapshot.get("shadow") or {}
    per_suffix: Dict[str, Dict[str, int]] = {}
    totals: Dict[str, int] = {}
    for cls in ALL_CLASSES:
        values = labelled.get(SHADOW_COUNTER_NAMES[cls]) or {}
        totals[cls] = sum(values.values())
        for suffix, count in values.items():
            row = per_suffix.setdefault(
                suffix, {name: 0 for name in ALL_CLASSES})
            row[cls] += count
    requests = int(counters.get("shadow_requests", 0))
    disagreements = sum(totals[cls] for cls in DIVERGENCE_CLASSES)
    return {
        "active": bool(meta.get("active", False)),
        "candidate_suffixes": meta.get("candidate_suffixes"),
        "requests": requests,
        "agree": totals[CLASS_AGREE],
        "primary_only": totals[CLASS_PRIMARY_ONLY],
        "candidate_only": totals[CLASS_CANDIDATE_ONLY],
        "conflict": totals[CLASS_CONFLICT],
        "disagreements": disagreements,
        "disagreement_fraction": (disagreements / requests
                                  if requests else 0.0),
        "per_suffix": {suffix: per_suffix[suffix]
                       for suffix in sorted(per_suffix)},
        "examples": meta.get("examples") or {
            cls: [] for cls in DIVERGENCE_CLASSES},
    }


def merge_shadow_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Fold per-worker ``stats()`` snapshots into one, ``shadow`` extra
    included.

    Counts merge through ``MetricsRegistry.merge_snapshot`` (the same
    primitive ``/metrics`` uses); the ``shadow`` extras -- which the
    registry merge ignores by design -- fold here: ``active`` is OR'd,
    the candidate size is taken from any active worker, and example
    lists concatenate up to :data:`EXAMPLE_CAP` per class.  The result
    is what the serving history persists per interval
    (``repro.obs.timeseries.HistoryStore``): a fleet-wide snapshot that
    still carries the ledger, so candidates compare across server
    lifetimes, not just within one.
    """
    registry = MetricsRegistry()
    examples: Dict[str, List[str]] = {
        cls: [] for cls in DIVERGENCE_CLASSES}
    active = False
    candidate_suffixes = None
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
        meta = snapshot.get("shadow") or {}
        if meta.get("active"):
            active = True
            if meta.get("candidate_suffixes") is not None:
                candidate_suffixes = meta["candidate_suffixes"]
        worker_examples = meta.get("examples") or {}
        for cls in DIVERGENCE_CLASSES:
            stored = examples[cls]
            for hostname in worker_examples.get(cls, []):
                if len(stored) >= EXAMPLE_CAP:
                    break
                stored.append(hostname)
    merged = registry.snapshot()
    merged["shadow"] = {"active": active,
                        "candidate_suffixes": candidate_suffixes,
                        "examples": examples}
    return merged


def merge_shadow_reports(snapshots: Iterable[Mapping]) -> dict:
    """One fleet-wide report from many per-worker ``stats()`` snapshots."""
    return shadow_report_from_snapshot(merge_shadow_snapshots(snapshots))


def render_shadow_report(report: Mapping, top: int = 10) -> str:
    """Human rendering of a disagreement report (``shadow-report``)."""
    lines = ["shadow disagreement report"]
    if not report.get("active"):
        lines[0] += " (no candidate loaded)"
    requests = report.get("requests", 0)
    lines.append(
        "  requests %d  agree %d  primary-only %d  candidate-only %d  "
        "conflict %d" % (requests, report.get("agree", 0),
                         report.get("primary_only", 0),
                         report.get("candidate_only", 0),
                         report.get("conflict", 0)))
    lines.append("  disagreement: %d (%.2f%%)"
                 % (report.get("disagreements", 0),
                    100.0 * report.get("disagreement_fraction", 0.0)))
    per_suffix = report.get("per_suffix") or {}
    disagreeing = sorted(
        ((suffix, row) for suffix, row in per_suffix.items()
         if any(row[cls] for cls in DIVERGENCE_CLASSES)),
        key=lambda pair: (-sum(pair[1][cls]
                               for cls in DIVERGENCE_CLASSES), pair[0]))
    if disagreeing:
        lines.append("  disagreeing suffixes:")
        for suffix, row in disagreeing[:top]:
            lines.append(
                "    %-28s agree %-6d p-only %-5d c-only %-5d "
                "conflict %d" % (suffix, row[CLASS_AGREE],
                                 row[CLASS_PRIMARY_ONLY],
                                 row[CLASS_CANDIDATE_ONLY],
                                 row[CLASS_CONFLICT]))
    examples = report.get("examples") or {}
    for cls in DIVERGENCE_CLASSES:
        sample = examples.get(cls) or []
        if sample:
            lines.append("  %s examples: %s" % (cls, ", ".join(sample)))
    return "\n".join(lines)
