"""``repro.serve`` -- the inference/serving side of the reproduction.

Where :mod:`repro.core` *learns* naming conventions from training
pairs, this package *applies* them at production rates, in four layers:

* :mod:`repro.serve.index` -- :class:`DispatchIndex`, a reversed-label
  suffix trie mapping a hostname to its owning convention's
  pre-compiled :class:`AnnotationPlan` in O(labels), replacing the
  per-hostname public-suffix-list scan of ``HoihoResult.extract``;
  each plan's pattern list is additionally fused -- when provably
  equivalent -- into a single alternation regex so one ``re.match``
  replaces the sequential first-match loop;
* :mod:`repro.serve.memo` -- :class:`AnnotationMemo`, the bounded LRU
  memo fronting dispatch on Zipf-skewed hostname streams;
* :mod:`repro.serve.service` -- :class:`AnnotationService`, the
  embeddable façade: load/warm/reload conventions (JSON or
  :class:`~repro.store.ArtifactStore`), ``annotate_one`` /
  ``annotate_batch``, graceful malformed-hostname handling;
* :mod:`repro.serve.engine` -- :class:`BulkAnnotator`, chunked
  order-preserving streaming over files/stdin with optional process
  fan-out (byte-identical to serial; packed single-buffer chunk IPC,
  fork-inherited dispatch index, adaptive chunk sizing) and TSV/JSONL
  sinks;
* :mod:`repro.serve.metrics` -- :class:`MetricsRegistry`, live
  counters, per-suffix extraction counts, and latency percentiles;
* :mod:`repro.serve.http` -- the network front-end: a pre-fork
  keep-alive HTTP server (single + batch annotate, ``/metrics``,
  health/readiness, admin hot reload, graceful SIGTERM drain) whose
  workers fork-inherit one warmed service;
* :mod:`repro.serve.loadgen` -- open/closed-loop HTTP load generator
  reporting throughput and latency percentiles;
* :mod:`repro.serve.shadow` -- :class:`ShadowService`, side-by-side
  shadow deployment of a candidate convention set with a per-suffix
  disagreement ledger and a gated promote path (the validate-before-
  trust half of tracking a changing Internet).

CLI surface: ``repro-hoiho annotate`` (bulk), ``repro-hoiho serve``
(line-oriented stdin/stdout loop), ``repro-hoiho serve-http``
(network server), ``repro-hoiho loadgen`` (load generator),
``repro-hoiho serve-stats`` (metrics/bench rendering); ``repro-hoiho
apply`` is a thin alias of ``annotate``.  See ``docs/SERVING.md``.
"""

from repro.serve.engine import (
    BulkAnnotator,
    Checkpoint,
    DEFAULT_CHUNK_SIZE,
    DeadLetter,
    SINKS,
    iter_hostnames,
    jsonl_line,
    tsv_line,
)
from repro.serve.http import (
    AnnotationHTTPServer,
    HttpConfig,
    ServerProcess,
    serve_http,
    wait_ready,
)
from repro.serve.index import (
    AnnotationPlan,
    DispatchIndex,
    MAX_FUSED_GROUPS,
    fuse_patterns,
    normalize_hostname,
)
from repro.serve.memo import (
    ABSENT,
    AnnotationMemo,
    DEFAULT_MEMO_SIZE,
)
from repro.serve.loadgen import (
    LoadGenConfig,
    run_loadgen,
    workload_fingerprint,
)
from repro.serve.metrics import (
    Counter,
    Histogram,
    LabelledCounter,
    MetricsRegistry,
    render_snapshot,
)
from repro.serve.service import AnnotationService
from repro.serve.shadow import (
    EXAMPLE_CAP,
    ShadowLedger,
    ShadowService,
    merge_shadow_reports,
    render_shadow_report,
    shadow_report_from_snapshot,
)

__all__ = [
    "ABSENT",
    "AnnotationHTTPServer",
    "AnnotationMemo",
    "AnnotationPlan",
    "AnnotationService",
    "BulkAnnotator",
    "Checkpoint",
    "Counter",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MEMO_SIZE",
    "DeadLetter",
    "DispatchIndex",
    "EXAMPLE_CAP",
    "Histogram",
    "HttpConfig",
    "LabelledCounter",
    "LoadGenConfig",
    "MAX_FUSED_GROUPS",
    "MetricsRegistry",
    "SINKS",
    "ServerProcess",
    "ShadowLedger",
    "ShadowService",
    "fuse_patterns",
    "iter_hostnames",
    "jsonl_line",
    "merge_shadow_reports",
    "normalize_hostname",
    "render_shadow_report",
    "render_snapshot",
    "run_loadgen",
    "serve_http",
    "shadow_report_from_snapshot",
    "tsv_line",
    "wait_ready",
]
