"""The paper's published example datasets, as library fixtures.

These are the only training inputs the paper reproduces in full, so they
double as ground truth for our tests and as ready-made demo data:

* :data:`FIGURE2_ITEMS` -- nts.ch, an operator that embeds its *own*
  ASN in every hostname (the convention Hoiho must reject);
* :data:`FIGURE3A_PAIRS` -- apparent ASNs at Damerau-Levenshtein
  distance one from the training ASN (typos and coincidences);
* :data:`FIGURE3B_ITEMS` -- hostnames embedding IP addresses whose
  octets coincide with training ASNs;
* :data:`FIGURE4_ITEMS` -- the sixteen Equinix hostnames of the worked
  example, from which the paper's NC #7 is learned.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.types import TrainingItem

#: Figure 2: the supplying AS labels every hostname with its own ASN.
FIGURE2_ITEMS: List[TrainingItem] = [
    TrainingItem("ge0-2.01.p.ost.ch.as15576.nts.ch", 15576),
    TrainingItem("lo1000.01.lns.czh.ch.as15576.nts.ch", 15576),
    TrainingItem("te0-0-24.01.p.bre.ch.as15576.nts.ch", 15576),
    TrainingItem("01.r.cba.ch.bl.cust.as15576.nts.ch", 44879),
    TrainingItem("02.r.czh.ch.sda.cust.as15576.nts.ch", 51768),
    TrainingItem("01.r.cbs.ch.wwc.cust.as15576.nts.ch", 206616),
]

#: Figure 3a: (hostname, training ASN, apparent number in the hostname).
FIGURE3A_PAIRS: List[Tuple[str, int, str]] = [
    ("201.atm2-0.vr1.tor2.alter.net", 701, "201"),
    ("te-4-0-0-85.53w.ba07.mctn.nb.aliant.net", 855, "85"),
    ("mlg4bras1-be127-605.antel.net.uy", 6057, "605"),
    ("as24940.akl-ix.nz", 20940, "24940"),
    ("as202073.swissix.ch", 205073, "202073"),
    ("gw-as20732.init7.net", 207032, "20732"),
]

#: Figure 3b: hostnames embedding the interface address.
FIGURE3B_ITEMS: List[TrainingItem] = [
    TrainingItem("50-236-216-122-static.hfc.comcastbusiness.net", 122,
                 address="50.236.216.122"),
    TrainingItem("209-201-58-109.dia.stat.centurylink.net", 209,
                 address="209.201.58.109"),
    TrainingItem("209-206-252-105.stat.centurytel.net", 209,
                 address="209.206.252.105"),
]

#: Figure 4: the Equinix worked example (hostnames a-p).
FIGURE4_ITEMS: List[TrainingItem] = [
    TrainingItem("109.sgw.equinix.com", 109),                  # a
    TrainingItem("714.os.equinix.com", 714),                   # b
    TrainingItem("714.me1.equinix.com", 714),                  # c
    TrainingItem("p714.sgw.equinix.com", 714),                 # d
    TrainingItem("s714.sgw.equinix.com", 714),                 # e
    TrainingItem("p24115.mel.equinix.com", 24115),             # f
    TrainingItem("s24115.tyo.equinix.com", 24115),             # g
    TrainingItem("22822-2.tyo.equinix.com", 22282),            # h
    TrainingItem("24482-fr5-ix.equinix.com", 24482),           # i
    TrainingItem("54827-dc5-ix2.equinix.com", 54827),          # j
    TrainingItem("55247-ch3-ix.equinix.com", 55247),           # k
    TrainingItem("netflix.zh2.corp.eu.equinix.com", 2906),     # l
    TrainingItem("ipv4.dosarrest.eqix.equinix.com", 19324),    # m
    TrainingItem("8069.tyo.equinix.com", 8075),                # n
    TrainingItem("8074.hkg.equinix.com", 8075),                # o
    TrainingItem("45437-sy1-ix.equinix.com", 55923),           # p
]

#: The convention the paper's figure 4 arrives at (NC #7).
NC7_PATTERNS: List[str] = [
    r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$",
    r"^(\d+)-.+\.equinix\.com$",
]
